#include "src/obs/slo.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace jiffy {
namespace obs {
namespace {

bool InitialSloEnabled() {
  const char* env = std::getenv("JIFFY_SLO");
  return env == nullptr || std::string(env) != "0";
}

// Applies the JIFFY_SLO env override before main (g_slo_enabled is
// constant-initialized, so ordering is safe regardless of TU order).
[[maybe_unused]] const bool g_slo_env_applied = [] {
  g_slo_enabled.store(InitialSloEnabled(), std::memory_order_relaxed);
  return true;
}();

int64_t PercentileOf(std::vector<int64_t>& sorted_or_not, double q) {
  if (sorted_or_not.empty()) {
    return 0;
  }
  const size_t idx = static_cast<size_t>(
      q * static_cast<double>(sorted_or_not.size() - 1) + 0.5);
  std::nth_element(sorted_or_not.begin(),
                   sorted_or_not.begin() + static_cast<ptrdiff_t>(idx),
                   sorted_or_not.end());
  return sorted_or_not[idx];
}

}  // namespace

void SetSloEnabled(bool on) {
  g_slo_enabled.store(on, std::memory_order_relaxed);
}

SloMonitor::SloMonitor() : SloMonitor(Options()) {}

SloMonitor::SloMonitor(Options options) : options_(options) {}

SloMonitor::TenantState* SloMonitor::Handle(const std::string& tenant) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = tenants_[tenant];
  if (slot == nullptr) {
    slot = std::make_unique<TenantState>(this, tenant,
                                         options_.window_capacity);
  }
  return slot.get();
}

void SloMonitor::Record(const std::string& tenant, DurationNs latency_ns,
                        bool ok) {
  if (!SloEnabled()) {
    return;
  }
  Handle(tenant)->Record(latency_ns, ok);
}

void SloMonitor::TenantState::Record(DurationNs latency_ns, bool ok) {
  if (!SloEnabled()) {
    return;
  }
  TenantHealth alert_snapshot;
  bool fire = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const size_t cap = latencies_.size();
    latencies_[seq_ % cap] = latency_ns;
    ok_[seq_ % cap] = ok ? 1 : 0;
    ++seq_;
    if (!ok) {
      ++total_errors_;
    }
    // Threshold evaluation is amortized: every check_every records, and
    // rate-limited per tenant by the alert cooldown.
    if (seq_ % owner_->options_.check_every == 0) {
      TenantHealth h = owner_->HealthLocked(this);
      if (h.p99_violated || h.budget_exhausted) {
        const TimeNs now = RealClock::Instance()->Now();
        if (now - last_alert_ns_ >= owner_->options_.alert_cooldown) {
          last_alert_ns_ = now;
          alert_snapshot = h;
          fire = true;
        }
      }
    }
  }
  if (fire) {
    AlertFn fn;
    {
      std::lock_guard<std::mutex> lock(owner_->mu_);
      fn = owner_->alert_fn_;
    }
    owner_->alerts_fired_.fetch_add(1, std::memory_order_relaxed);
    if (fn) {
      fn(alert_snapshot);
    }
  }
}

void SloMonitor::SetAlertCallback(AlertFn fn) {
  std::lock_guard<std::mutex> lock(mu_);
  alert_fn_ = std::move(fn);
}

void SloMonitor::SetOptions(const Options& options) {
  std::vector<TenantState*> states;
  {
    std::lock_guard<std::mutex> lock(mu_);
    options_ = options;
    for (auto& [tenant, state] : tenants_) {
      states.push_back(state.get());
    }
  }
  for (TenantState* state : states) {
    std::lock_guard<std::mutex> lock(state->mu_);
    state->latencies_.assign(options.window_capacity, 0);
    state->ok_.assign(options.window_capacity, 0);
    state->seq_ = 0;
    state->total_errors_ = 0;
    state->last_alert_ns_ = 0;
  }
}

// Caller holds state->mu_.
TenantHealth SloMonitor::HealthLocked(TenantState* state) {
  TenantHealth h;
  h.tenant = state->tenant_;
  h.total_ops = state->seq_;
  h.total_errors = state->total_errors_;
  const size_t cap = state->latencies_.size();
  const size_t n = static_cast<size_t>(
      std::min<uint64_t>(state->seq_, static_cast<uint64_t>(cap)));
  h.window_samples = n;
  if (n == 0) {
    return h;
  }
  std::vector<int64_t> lat(state->latencies_.begin(),
                           state->latencies_.begin() + n);
  uint64_t errs = 0;
  for (size_t i = 0; i < n; ++i) {
    errs += state->ok_[i] == 0 ? 1 : 0;
  }
  h.window_errors = errs;
  h.p50_ns = PercentileOf(lat, 0.50);
  h.p90_ns = PercentileOf(lat, 0.90);
  h.p99_ns = PercentileOf(lat, 0.99);
  h.availability =
      1.0 - static_cast<double>(errs) / static_cast<double>(n);
  const double budget =
      (1.0 - options_.target.availability) * static_cast<double>(n);
  h.error_budget_remaining =
      budget <= 0.0
          ? (errs == 0 ? 1.0 : 0.0)
          : std::max(0.0, 1.0 - static_cast<double>(errs) / budget);
  h.p99_violated = h.p99_ns > options_.target.p99_latency_ns;
  h.budget_exhausted = h.error_budget_remaining <= 0.0 && errs > 0;
  return h;
}

TenantHealth SloMonitor::Health(const std::string& tenant) {
  TenantState* state = Handle(tenant);
  std::lock_guard<std::mutex> lock(state->mu_);
  return HealthLocked(state);
}

std::vector<TenantHealth> SloMonitor::HealthAll() {
  std::vector<TenantState*> states;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [tenant, state] : tenants_) {
      states.push_back(state.get());
    }
  }
  std::vector<TenantHealth> out;
  for (TenantState* state : states) {
    std::lock_guard<std::mutex> lock(state->mu_);
    out.push_back(HealthLocked(state));
  }
  return out;
}

std::string SloMonitor::ReportText() {
  std::string out =
      "tenant              ops      err  p50_us   p90_us   p99_us   "
      "avail    budget  status\n";
  char buf[256];
  for (const TenantHealth& h : HealthAll()) {
    std::snprintf(
        buf, sizeof(buf),
        "%-16s %8llu %8llu %7lld %8lld %8lld  %.4f  %7.2f%%  %s\n",
        h.tenant.c_str(), static_cast<unsigned long long>(h.total_ops),
        static_cast<unsigned long long>(h.total_errors),
        static_cast<long long>(h.p50_ns / 1000),
        static_cast<long long>(h.p90_ns / 1000),
        static_cast<long long>(h.p99_ns / 1000), h.availability,
        h.error_budget_remaining * 100.0,
        h.budget_exhausted ? "BUDGET-EXHAUSTED"
                           : (h.p99_violated ? "P99-VIOLATED" : "ok"));
    out += buf;
  }
  return out;
}

std::string SloMonitor::ReportJson() {
  std::string out = "[";
  char buf[512];
  bool first = true;
  for (const TenantHealth& h : HealthAll()) {
    std::snprintf(
        buf, sizeof(buf),
        "%s\n{\"tenant\":\"%s\",\"total_ops\":%llu,\"total_errors\":%llu,"
        "\"window_samples\":%llu,\"window_errors\":%llu,"
        "\"p50_ns\":%lld,\"p90_ns\":%lld,\"p99_ns\":%lld,"
        "\"availability\":%.6f,\"error_budget_remaining\":%.4f,"
        "\"p99_violated\":%s,\"budget_exhausted\":%s}",
        first ? "" : ",", h.tenant.c_str(),
        static_cast<unsigned long long>(h.total_ops),
        static_cast<unsigned long long>(h.total_errors),
        static_cast<unsigned long long>(h.window_samples),
        static_cast<unsigned long long>(h.window_errors),
        static_cast<long long>(h.p50_ns), static_cast<long long>(h.p90_ns),
        static_cast<long long>(h.p99_ns), h.availability,
        h.error_budget_remaining, h.p99_violated ? "true" : "false",
        h.budget_exhausted ? "true" : "false");
    out += buf;
    first = false;
  }
  out += "\n]";
  return out;
}

void SloMonitor::Reset() {
  std::vector<TenantState*> states;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [tenant, state] : tenants_) {
      states.push_back(state.get());
    }
  }
  for (TenantState* state : states) {
    std::lock_guard<std::mutex> lock(state->mu_);
    state->seq_ = 0;
    state->total_errors_ = 0;
    state->last_alert_ns_ = 0;
  }
  alerts_fired_.store(0, std::memory_order_relaxed);
}

}  // namespace obs
}  // namespace jiffy
