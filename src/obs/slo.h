// Per-tenant SLO / health monitoring (see DESIGN.md §6 "Observability").
//
// Every client data-structure op reports (tenant, latency, ok) into a
// SloMonitor owned by the cluster assembly. The monitor keeps a rolling
// window of recent samples per tenant (bounded ring, default 8192), from
// which it computes latency quantiles (p50/p90/p99), availability, and the
// remaining error budget against a target (e.g. 99.9% availability means a
// budget of 0.1% of requests; the budget fraction remaining hits 0 when
// errors in the window reach that allowance).
//
// Threshold callbacks: when a tenant's windowed p99 exceeds the latency
// target or its error budget is exhausted, the monitor fires the registered
// alert callback — rate-limited per tenant by a cooldown so a sustained
// violation produces one alert per cooldown period, not one per op.
//
// Cost model: recording is gated on JIFFY_SLO (default on) AND the obs
// master flag; disabled, Record() is one relaxed load and a branch. Enabled,
// it is one per-tenant mutex acquisition and a ring store — callers cache
// the per-tenant handle (TenantHandle) at client-construction time so the
// hot path never touches the tenant map.

#ifndef SRC_OBS_SLO_H_
#define SRC_OBS_SLO_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/clock.h"
#include "src/obs/metrics.h"

namespace jiffy {
namespace obs {

// SLO opt-out flag, additionally gated on the obs master flag. Constant-
// initialized; the env override JIFFY_SLO=0 is applied before main by an
// initializer in slo.cc.
inline std::atomic<bool> g_slo_enabled{true};

inline bool SloEnabled() {
  return g_slo_enabled.load(std::memory_order_relaxed) && Enabled();
}

void SetSloEnabled(bool on);

struct SloTarget {
  int64_t p99_latency_ns = 50 * kMillisecond;
  double availability = 0.999;  // Error budget: 1 - availability.
};

// One tenant's windowed health, as computed at report time.
struct TenantHealth {
  std::string tenant;
  uint64_t window_samples = 0;  // Samples currently in the window.
  uint64_t total_ops = 0;       // Lifetime ops recorded.
  uint64_t total_errors = 0;    // Lifetime failed ops.
  uint64_t window_errors = 0;
  int64_t p50_ns = 0;
  int64_t p90_ns = 0;
  int64_t p99_ns = 0;
  double availability = 1.0;          // Windowed success fraction.
  double error_budget_remaining = 1.0;  // 1 = untouched, 0 = exhausted.
  bool p99_violated = false;
  bool budget_exhausted = false;
};

class SloMonitor {
 public:
  struct Options {
    SloTarget target;
    size_t window_capacity = 8192;             // Samples per tenant.
    DurationNs alert_cooldown = 1 * kSecond;   // Real time between alerts.
    size_t check_every = 64;  // Evaluate thresholds every N records.
  };

  // Fired (synchronously, on the recording thread) when a tenant crosses a
  // threshold; `health` is the violating snapshot.
  using AlertFn = std::function<void(const TenantHealth& health)>;

  SloMonitor();  // Default options (out of line: nested-NSDMI rules).
  explicit SloMonitor(Options options);
  SloMonitor(const SloMonitor&) = delete;
  SloMonitor& operator=(const SloMonitor&) = delete;

  // Stable per-tenant recording handle; cache it (clients resolve it once
  // at construction so Record() skips the tenant map).
  class TenantState;
  TenantState* Handle(const std::string& tenant);

  // Convenience one-shot record (map lookup per call).
  void Record(const std::string& tenant, DurationNs latency_ns, bool ok);

  void SetAlertCallback(AlertFn fn);

  // Replaces the targets/window parameters. Drops all samples (the window
  // capacity may change); cached TenantState handles stay valid. Not
  // synchronized against concurrent Record() — call during setup, before
  // traffic.
  void SetOptions(const Options& options);

  // Health of one tenant / all tenants (sorted by tenant id).
  TenantHealth Health(const std::string& tenant);
  std::vector<TenantHealth> HealthAll();

  // Human-readable table / JSON array of every tenant's health.
  std::string ReportText();
  std::string ReportJson();

  // Alerts fired since construction (for tests and health dumps).
  uint64_t alerts_fired() const {
    return alerts_fired_.load(std::memory_order_relaxed);
  }

  const Options& options() const { return options_; }

  // Drops all samples and alert state (tenant registrations survive).
  void Reset();

 private:
  TenantHealth HealthLocked(TenantState* state);

  Options options_;
  std::atomic<uint64_t> alerts_fired_{0};
  std::mutex mu_;  // Guards tenants_ map shape and alert_fn_.
  AlertFn alert_fn_;
  std::map<std::string, std::unique_ptr<TenantState>> tenants_;
};

// Per-tenant rolling window. Public so clients can hold a typed handle;
// treat as opaque outside slo.cc except for Record().
class SloMonitor::TenantState {
 public:
  TenantState(SloMonitor* owner, std::string tenant, size_t capacity)
      : owner_(owner), tenant_(std::move(tenant)) {
    latencies_.resize(capacity);
    ok_.resize(capacity);
  }

  // Gated on SloEnabled() internally; cheap no-op when disabled.
  void Record(DurationNs latency_ns, bool ok);

 private:
  friend class SloMonitor;

  SloMonitor* owner_;
  std::string tenant_;
  std::mutex mu_;
  std::vector<int64_t> latencies_;  // Ring, slot = seq % capacity.
  std::vector<uint8_t> ok_;
  uint64_t seq_ = 0;        // Total samples ever recorded.
  uint64_t total_errors_ = 0;
  TimeNs last_alert_ns_ = 0;
};

}  // namespace obs
}  // namespace jiffy

#endif  // SRC_OBS_SLO_H_
