#include "src/obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <unordered_map>
#include <unordered_set>

#include "src/common/logging.h"
#include "src/obs/metrics.h"

namespace jiffy {
namespace obs {
namespace {

bool InitialTracingEnabled() {
  const char* env = std::getenv("JIFFY_TRACE");
  return env != nullptr && std::string(env) == "1";
}

uint32_t InitialSampleEvery() {
  const char* env = std::getenv("JIFFY_TRACE_SAMPLE");
  if (env == nullptr) {
    return 1;
  }
  const long v = std::strtol(env, nullptr, 10);
  return v < 1 ? 1 : static_cast<uint32_t>(v);
}

// Applies the JIFFY_TRACE / JIFFY_TRACE_SAMPLE env overrides before main
// (both flags are constant-initialized, so ordering is safe regardless of
// TU order).
[[maybe_unused]] const bool g_trace_env_applied = [] {
  g_trace_enabled.store(InitialTracingEnabled(), std::memory_order_relaxed);
  internal::g_sample_every.store(InitialSampleEvery(),
                                 std::memory_order_relaxed);
  return true;
}();

// Escapes the characters that can plausibly appear in span/attr names (job
// ids are caller-chosen strings) so the exported JSON stays well-formed.
std::string JsonEscape(const char* s) {
  std::string out;
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace

namespace internal {

bool SampleRoot() {
  const uint32_t every = g_sample_every.load(std::memory_order_relaxed);
  if (every <= 1) {
    return true;
  }
  // Per-thread counter: deterministic per recording thread, no shared
  // cache-line traffic on the root-span path.
  thread_local uint64_t root_seq = 0;
  return (root_seq++ % every) == 0;
}

}  // namespace internal

void SetTraceSampleEvery(uint32_t n) {
  internal::g_sample_every.store(n < 1 ? 1 : n, std::memory_order_relaxed);
}

const char* InternedName(const std::string& s) {
  // Node-based set: element addresses (and thus c_str()) are stable across
  // rehash for the process lifetime. Bounded so a caller interning
  // unbounded dynamic strings degrades to one shared name, not a leak.
  static std::mutex mu;
  static std::unordered_set<std::string>* table =
      new std::unordered_set<std::string>();
  std::lock_guard<std::mutex> lock(mu);
  auto it = table->find(s);
  if (it != table->end()) {
    return it->c_str();
  }
  if (table->size() >= kMaxInternedNames) {
    static const char* overflow = "_interned_overflow";
    return overflow;
  }
  return table->insert(s).first->c_str();
}

Tracer* Tracer::Global() {
  static Tracer tracer;
  return &tracer;
}

Tracer::ThreadRing* Tracer::MyRing() {
  thread_local ThreadRing* ring = nullptr;
  if (ring == nullptr) {
    auto owned = std::make_unique<ThreadRing>(CurrentThreadId());
    ring = owned.get();
    std::lock_guard<std::mutex> lock(rings_mu_);
    rings_.push_back(std::move(owned));
  }
  return ring;
}

void Tracer::RecordComplete(const char* name, const char* category,
                            TimeNs start_ns, DurationNs duration_ns) {
  if (!enabled()) {
    return;
  }
  TraceEvent ev;
  ev.name = name;
  ev.category = category;
  ev.start_ns = start_ns;
  ev.duration_ns = duration_ns;
  // Attach to the calling thread's current context: call sites that predate
  // trace contexts (transport RTTs, lock waits) become children of the
  // enclosing client/controller span with no signature change.
  const TraceContext& ctx = g_trace_context;
  if (ctx.active() && ctx.trace_id != kSuppressedTrace) {
    ev.trace_id = ctx.trace_id;
    ev.parent_id = ctx.span_id;
    ev.span_id = internal::MintId();
  }
  RecordEvent(ev);
}

void Tracer::RecordEvent(const TraceEvent& ev) {
  if (!enabled()) {
    return;
  }
  ThreadRing* ring = MyRing();
  const uint64_t slot = ring->count.load(std::memory_order_relaxed);
  TraceEvent stored = ev;
  stored.tid = ring->tid;
  ring->events[slot % kRingCapacity] = stored;
  ring->count.store(slot + 1, std::memory_order_release);
}

std::vector<TraceEvent> Tracer::Collect() const {
  std::vector<TraceEvent> out;
  {
    std::lock_guard<std::mutex> lock(rings_mu_);
    for (const auto& ring : rings_) {
      const uint64_t total = ring->count.load(std::memory_order_acquire);
      const uint64_t n = std::min<uint64_t>(total, kRingCapacity);
      for (uint64_t i = 0; i < n; ++i) {
        // Oldest surviving event first when the ring has wrapped.
        const TraceEvent& ev = ring->events[(total - n + i) % kRingCapacity];
        if (ev.name != nullptr) {
          out.push_back(ev);
        }
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.start_ns < b.start_ns;
            });
  return out;
}

size_t Tracer::EventCount() const {
  std::lock_guard<std::mutex> lock(rings_mu_);
  size_t total = 0;
  for (const auto& ring : rings_) {
    total += static_cast<size_t>(std::min<uint64_t>(
        ring->count.load(std::memory_order_acquire), kRingCapacity));
  }
  return total;
}

std::string Tracer::ToChromeJson() const {
  const std::vector<TraceEvent> events = Collect();
  // Parent lookup for flow events: span_id → (tid, start_ns). Span ids are
  // unique per event, so collisions only arise for id-less (zero) spans,
  // which we skip.
  std::unordered_map<uint64_t, std::pair<uint32_t, TimeNs>> span_index;
  for (const TraceEvent& ev : events) {
    if (ev.span_id != 0) {
      span_index[ev.span_id] = {ev.tid, ev.start_ns};
    }
  }
  std::string out = "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  char buf[512];
  bool first = true;
  for (const TraceEvent& ev : events) {
    std::string args;
    if (ev.trace_id != 0) {
      std::snprintf(buf, sizeof(buf),
                    "\"trace\":\"%llx\",\"span\":\"%llx\",\"parent\":\"%llx\"",
                    static_cast<unsigned long long>(ev.trace_id),
                    static_cast<unsigned long long>(ev.span_id),
                    static_cast<unsigned long long>(ev.parent_id));
      args = buf;
    }
    if (ev.attr != nullptr) {
      if (!args.empty()) {
        args += ',';
      }
      args += "\"tenant\":\"" + JsonEscape(ev.attr) + "\"";
    }
    std::snprintf(buf, sizeof(buf),
                  "%s\n{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\","
                  "\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":%u%s%s%s}",
                  first ? "" : ",", JsonEscape(ev.name).c_str(), ev.category,
                  static_cast<double>(ev.start_ns) / 1e3,
                  static_cast<double>(ev.duration_ns) / 1e3, ev.tid,
                  args.empty() ? "" : ",\"args\":{", args.c_str(),
                  args.empty() ? "" : "}");
    out += buf;
    first = false;
    // Parent link crossing threads: emit a flow pair so Perfetto draws the
    // causal arrow from the parent span to this one.
    if (ev.parent_id != 0) {
      auto it = span_index.find(ev.parent_id);
      if (it != span_index.end() && it->second.first != ev.tid) {
        std::snprintf(
            buf, sizeof(buf),
            ",\n{\"name\":\"link\",\"cat\":\"%s\",\"ph\":\"s\","
            "\"id\":%llu,\"ts\":%.3f,\"pid\":1,\"tid\":%u},"
            "\n{\"name\":\"link\",\"cat\":\"%s\",\"ph\":\"f\",\"bp\":\"e\","
            "\"id\":%llu,\"ts\":%.3f,\"pid\":1,\"tid\":%u}",
            ev.category, static_cast<unsigned long long>(ev.span_id),
            static_cast<double>(it->second.second) / 1e3, it->second.first,
            ev.category, static_cast<unsigned long long>(ev.span_id),
            static_cast<double>(ev.start_ns) / 1e3, ev.tid);
        out += buf;
      }
    }
  }
  out += "\n]}\n";
  return out;
}

bool Tracer::WriteChromeJson(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  const std::string json = ToChromeJson();
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  return written == json.size();
}

CriticalPathReport Tracer::CriticalPath(uint64_t trace_id) const {
  CriticalPathReport report;
  report.trace_id = trace_id;
  if (trace_id == 0) {
    return report;
  }
  std::vector<TraceEvent> spans;
  for (const TraceEvent& ev : Collect()) {
    if (ev.trace_id == trace_id) {
      spans.push_back(ev);
    }
  }
  report.span_count = spans.size();
  // Sum of direct children per parent, to subtract out of each span's
  // duration. Spans whose parent was evicted from the ring count as roots
  // of their own subtree.
  std::unordered_map<uint64_t, DurationNs> child_time;
  std::unordered_set<uint64_t> present;
  for (const TraceEvent& ev : spans) {
    present.insert(ev.span_id);
  }
  for (const TraceEvent& ev : spans) {
    if (ev.parent_id != 0 && present.count(ev.parent_id) > 0) {
      child_time[ev.parent_id] += ev.duration_ns;
    }
  }
  for (const TraceEvent& ev : spans) {
    const DurationNs children = child_time[ev.span_id];
    const DurationNs self =
        ev.duration_ns > children ? ev.duration_ns - children : 0;
    const std::string cat = ev.category == nullptr ? "" : ev.category;
    if (cat == "net") {
      report.transport_ns += self;
    } else if (cat == "queue") {
      report.queue_ns += self;
    } else if (cat == "lock") {
      report.lock_ns += self;
    } else {
      report.execute_ns += self;
    }
    const bool is_root =
        ev.parent_id == 0 || present.count(ev.parent_id) == 0;
    if (is_root && ev.duration_ns > report.total_ns) {
      report.total_ns = ev.duration_ns;
    }
  }
  return report;
}

std::string CriticalPathReport::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "trace %llx: %zu spans, total %lld ns "
                "(queue %lld, transport %lld, lock %lld, execute %lld)",
                static_cast<unsigned long long>(trace_id), span_count,
                static_cast<long long>(total_ns),
                static_cast<long long>(queue_ns),
                static_cast<long long>(transport_ns),
                static_cast<long long>(lock_ns),
                static_cast<long long>(execute_ns));
  return buf;
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(rings_mu_);
  for (auto& ring : rings_) {
    ring->count.store(0, std::memory_order_release);
  }
}

}  // namespace obs
}  // namespace jiffy
