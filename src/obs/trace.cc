#include "src/obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "src/common/logging.h"
#include "src/obs/metrics.h"

namespace jiffy {
namespace obs {
namespace {

bool InitialTracingEnabled() {
  const char* env = std::getenv("JIFFY_TRACE");
  return env != nullptr && std::string(env) == "1";
}

// Applies the JIFFY_TRACE env override before main (g_trace_enabled is
// constant-initialized, so ordering is safe regardless of TU order).
[[maybe_unused]] const bool g_trace_env_applied = [] {
  g_trace_enabled.store(InitialTracingEnabled(), std::memory_order_relaxed);
  return true;
}();

}  // namespace

Tracer* Tracer::Global() {
  static Tracer tracer;
  return &tracer;
}

Tracer::ThreadRing* Tracer::MyRing() {
  thread_local ThreadRing* ring = nullptr;
  if (ring == nullptr) {
    auto owned = std::make_unique<ThreadRing>(CurrentThreadId());
    ring = owned.get();
    std::lock_guard<std::mutex> lock(rings_mu_);
    rings_.push_back(std::move(owned));
  }
  return ring;
}

void Tracer::RecordComplete(const char* name, const char* category,
                            TimeNs start_ns, DurationNs duration_ns) {
  if (!enabled()) {
    return;
  }
  ThreadRing* ring = MyRing();
  const uint64_t slot = ring->count.load(std::memory_order_relaxed);
  ring->events[slot % kRingCapacity] =
      TraceEvent{name, category, start_ns, duration_ns, ring->tid};
  ring->count.store(slot + 1, std::memory_order_release);
}

std::vector<TraceEvent> Tracer::Collect() const {
  std::vector<TraceEvent> out;
  {
    std::lock_guard<std::mutex> lock(rings_mu_);
    for (const auto& ring : rings_) {
      const uint64_t total = ring->count.load(std::memory_order_acquire);
      const uint64_t n = std::min<uint64_t>(total, kRingCapacity);
      for (uint64_t i = 0; i < n; ++i) {
        // Oldest surviving event first when the ring has wrapped.
        const TraceEvent& ev = ring->events[(total - n + i) % kRingCapacity];
        if (ev.name != nullptr) {
          out.push_back(ev);
        }
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.start_ns < b.start_ns;
            });
  return out;
}

size_t Tracer::EventCount() const {
  std::lock_guard<std::mutex> lock(rings_mu_);
  size_t total = 0;
  for (const auto& ring : rings_) {
    total += static_cast<size_t>(std::min<uint64_t>(
        ring->count.load(std::memory_order_acquire), kRingCapacity));
  }
  return total;
}

std::string Tracer::ToChromeJson() const {
  const std::vector<TraceEvent> events = Collect();
  std::string out = "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  char buf[256];
  bool first = true;
  for (const TraceEvent& ev : events) {
    std::snprintf(buf, sizeof(buf),
                  "%s\n{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\","
                  "\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":%u}",
                  first ? "" : ",", ev.name, ev.category,
                  static_cast<double>(ev.start_ns) / 1e3,
                  static_cast<double>(ev.duration_ns) / 1e3, ev.tid);
    out += buf;
    first = false;
  }
  out += "\n]}\n";
  return out;
}

bool Tracer::WriteChromeJson(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  const std::string json = ToChromeJson();
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  return written == json.size();
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(rings_mu_);
  for (auto& ring : rings_) {
    ring->count.store(0, std::memory_order_release);
  }
}

}  // namespace obs
}  // namespace jiffy
