// Request-lifecycle tracing (see DESIGN.md §6 "Observability").
//
// A span covers one stage of a request's life — a client data-structure op,
// a transport round trip, a memory-server block op, or a controller path
// (create/allocate → InitBlock, lease renewal, repartition trigger →
// split/merge). Completed spans are recorded into fixed-size per-thread ring
// buffers (lock-free on the record path; oldest events are overwritten) and
// exported as Chrome trace_event JSON, loadable in chrome://tracing or
// Perfetto.
//
// Tracing is off by default (env JIFFY_TRACE=1 or SetEnabled(true) turns it
// on) and additionally gated on the obs master flag: when either is off, a
// JIFFY_TRACE_SPAN costs one relaxed atomic load and no clock reads.
//
// Collect()/ToChromeJson() read the rings without stopping writers; call
// them after worker threads quiesce for an exact export. Exported `name` /
// `category` strings must be string literals (the ring stores pointers).

#ifndef SRC_OBS_TRACE_H_
#define SRC_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/clock.h"
#include "src/obs/metrics.h"

namespace jiffy {
namespace obs {

// Tracing opt-in flag, additionally gated on the obs master flag. Constant-
// initialized; the env override JIFFY_TRACE=1 is applied before main by an
// initializer in trace.cc. Inline so a disabled JIFFY_TRACE_SPAN compiles to
// two relaxed loads and a branch — no static-init guards, no clock reads.
inline std::atomic<bool> g_trace_enabled{false};

inline bool TracingEnabled() {
  return g_trace_enabled.load(std::memory_order_relaxed) && Enabled();
}

struct TraceEvent {
  const char* name = nullptr;      // Static string (literal).
  const char* category = nullptr;  // Static string (literal).
  TimeNs start_ns = 0;             // RealClock timestamp.
  DurationNs duration_ns = 0;
  uint32_t tid = 0;
};

// Process-wide tracer. One ring buffer per recording thread, registered on
// first use and owned by the tracer for the process lifetime.
class Tracer {
 public:
  static constexpr size_t kRingCapacity = 16384;  // Events per thread.

  static Tracer* Global();

  bool enabled() const { return TracingEnabled(); }
  void SetEnabled(bool on) {
    g_trace_enabled.store(on, std::memory_order_relaxed);
  }

  // Records one completed span. `name`/`category` must be string literals.
  void RecordComplete(const char* name, const char* category, TimeNs start_ns,
                      DurationNs duration_ns);

  // All buffered events across threads, sorted by start time.
  std::vector<TraceEvent> Collect() const;

  // Total events currently buffered (capped at kRingCapacity per thread).
  size_t EventCount() const;

  // Chrome trace_event JSON ("X" complete events, ts/dur in microseconds).
  std::string ToChromeJson() const;

  // Writes ToChromeJson() to `path`; false on I/O failure.
  bool WriteChromeJson(const std::string& path) const;

  // Drops all buffered events (ring registrations survive).
  void Clear();

 private:
  struct ThreadRing {
    explicit ThreadRing(uint32_t thread_id) : tid(thread_id) {
      events.resize(kRingCapacity);
    }
    uint32_t tid;
    // Total events ever recorded by this thread; slot = count % capacity.
    std::atomic<uint64_t> count{0};
    std::vector<TraceEvent> events;
  };

  Tracer() = default;
  ThreadRing* MyRing();

  mutable std::mutex rings_mu_;
  std::vector<std::unique_ptr<ThreadRing>> rings_;
};

// RAII span: samples the clock on construction iff tracing is enabled, and
// records a complete event on destruction. `name`/`category` must be string
// literals.
class TraceSpan {
 public:
  TraceSpan(const char* name, const char* category)
      : name_(name),
        category_(category),
        start_(TracingEnabled() ? RealClock::Instance()->Now() : kInactive) {}
  ~TraceSpan() {
    if (start_ != kInactive) {
      Tracer::Global()->RecordComplete(
          name_, category_, start_, RealClock::Instance()->Now() - start_);
    }
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  static constexpr TimeNs kInactive = -1;
  const char* name_;
  const char* category_;
  TimeNs start_;
};

#define JIFFY_OBS_CONCAT_INNER(a, b) a##b
#define JIFFY_OBS_CONCAT(a, b) JIFFY_OBS_CONCAT_INNER(a, b)

// One scoped span. Usage: JIFFY_TRACE_SPAN("kv.put", "client");
#define JIFFY_TRACE_SPAN(name, category)       \
  ::jiffy::obs::TraceSpan JIFFY_OBS_CONCAT(    \
      jiffy_trace_span_, __LINE__)(name, category)

}  // namespace obs
}  // namespace jiffy

#endif  // SRC_OBS_TRACE_H_
