// Request-lifecycle tracing (see DESIGN.md §6 "Observability").
//
// A span covers one stage of a request's life — a client data-structure op,
// a transport round trip, a memory-server block op, or a controller path
// (create/allocate → InitBlock, lease renewal, repartition trigger →
// split/merge). Completed spans are recorded into fixed-size per-thread ring
// buffers (lock-free on the record path; oldest events are overwritten) and
// exported as Chrome trace_event JSON, loadable in chrome://tracing or
// Perfetto.
//
// Causality. Every span carries a TraceContext{trace_id, span_id,
// parent_id}. The context propagates implicitly through a thread_local: a
// TraceSpan opened while another span is live on the same thread becomes its
// child, and a root span (no live parent) mints a fresh trace_id. Work that
// hops threads (the repartitioner, failure repair) captures
// CurrentTraceContext() at the hand-off point and reopens a span with the
// explicit-parent constructor; the exporter renders those cross-thread edges
// as Chrome flow events so Perfetto draws the arrow. CriticalPath(trace_id)
// folds one request's spans into queue / transport / lock / execute
// self-time segments.
//
// Sampling. JIFFY_TRACE_SAMPLE=N keeps causal ids for 1-in-N roots; the
// other roots (and everything under them) still record spans but with zero
// ids, so ring pressure is unchanged and only id-minting contention drops.
//
// Tracing is off by default (env JIFFY_TRACE=1 or SetEnabled(true) turns it
// on) and additionally gated on the obs master flag: when either is off, a
// JIFFY_TRACE_SPAN costs one relaxed atomic load and no clock reads.
//
// Collect()/ToChromeJson() read the rings without stopping writers; call
// them after worker threads quiesce for an exact export. `name` / `category`
// strings must outlive the tracer: pass string literals, or intern dynamic
// strings (tenant/job ids) through InternedName(), which copies into a
// process-lifetime table and returns a stable pointer.

#ifndef SRC_OBS_TRACE_H_
#define SRC_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/clock.h"
#include "src/obs/metrics.h"

namespace jiffy {
namespace obs {

// Tracing opt-in flag, additionally gated on the obs master flag. Constant-
// initialized; the env override JIFFY_TRACE=1 is applied before main by an
// initializer in trace.cc. Inline so a disabled JIFFY_TRACE_SPAN compiles to
// two relaxed loads and a branch — no static-init guards, no clock reads.
inline std::atomic<bool> g_trace_enabled{false};

inline bool TracingEnabled() {
  return g_trace_enabled.load(std::memory_order_relaxed) && Enabled();
}

// Causal identity of the innermost live span on a thread. trace_id groups
// all spans of one request; parent links are span_id → parent_id edges.
// A zero trace_id means "no live trace" (a span opened under it becomes a
// root); kSuppressedTrace means the root lost the sampling coin flip and
// descendants must record without ids rather than re-rolling.
struct TraceContext {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_id = 0;

  bool active() const { return trace_id != 0; }
};

inline constexpr uint64_t kSuppressedTrace = ~0ull;

// Innermost live context for this thread. TraceSpan saves/restores it with
// stack discipline; read it (CurrentTraceContext()) at a hand-off point to
// carry causality across threads.
inline thread_local TraceContext g_trace_context;

inline const TraceContext& CurrentTraceContext() { return g_trace_context; }

// Copies `s` into a process-lifetime table and returns a stable pointer,
// suitable for TraceEvent name/attr fields. Repeated calls with the same
// string return the same pointer. The table is bounded (kMaxInternedNames);
// past the cap all new strings collapse to a shared "_interned_overflow"
// so a runaway caller cannot leak unboundedly.
const char* InternedName(const std::string& s);
inline constexpr size_t kMaxInternedNames = 4096;

struct TraceEvent {
  const char* name = nullptr;      // Literal or InternedName() pointer.
  const char* category = nullptr;  // Static string (literal).
  TimeNs start_ns = 0;             // RealClock timestamp.
  DurationNs duration_ns = 0;
  uint32_t tid = 0;
  uint64_t trace_id = 0;   // 0: recorded outside any (sampled) trace.
  uint64_t span_id = 0;
  uint64_t parent_id = 0;  // 0: root span.
  const char* attr = nullptr;  // Optional label (tenant), interned/literal.
};

// Self-time decomposition of one request (all spans sharing a trace_id).
// Each span's self time (duration minus direct children, clamped at 0) is
// charged to a segment by category: "net" → transport, "queue" → queue,
// "lock" → lock, everything else → execute.
struct CriticalPathReport {
  uint64_t trace_id = 0;
  size_t span_count = 0;
  DurationNs total_ns = 0;  // Root span duration (longest root if several).
  DurationNs queue_ns = 0;
  DurationNs transport_ns = 0;
  DurationNs lock_ns = 0;
  DurationNs execute_ns = 0;

  std::string ToString() const;
};

// Process-wide tracer. One ring buffer per recording thread, registered on
// first use and owned by the tracer for the process lifetime.
class Tracer {
 public:
  static constexpr size_t kRingCapacity = 16384;  // Events per thread.

  static Tracer* Global();

  bool enabled() const { return TracingEnabled(); }
  void SetEnabled(bool on) {
    g_trace_enabled.store(on, std::memory_order_relaxed);
  }

  // Records one completed span as a child of the calling thread's current
  // context (ids attach automatically; pass-through sites like the
  // transport need no API change). `name`/`category` must outlive the
  // tracer (literal or interned).
  void RecordComplete(const char* name, const char* category, TimeNs start_ns,
                      DurationNs duration_ns);

  // Fully explicit variant used by TraceSpan (ids already minted).
  void RecordEvent(const TraceEvent& ev);

  // All buffered events across threads, sorted by start time.
  std::vector<TraceEvent> Collect() const;

  // Total events currently buffered (capped at kRingCapacity per thread).
  size_t EventCount() const;

  // Chrome trace_event JSON: "X" complete events with trace/span/parent ids
  // in args, plus "s"/"f" flow-event pairs for parent links that cross
  // threads (ts/dur in microseconds).
  std::string ToChromeJson() const;

  // Writes ToChromeJson() to `path`; false on I/O failure.
  bool WriteChromeJson(const std::string& path) const;

  // Queue/transport/lock/execute self-time breakdown for one trace.
  // Spans whose parent is missing from the buffer (evicted) are treated as
  // roots of their subtree; total_ns is the longest such root.
  CriticalPathReport CriticalPath(uint64_t trace_id) const;

  // Drops all buffered events (ring registrations survive).
  void Clear();

 private:
  struct ThreadRing {
    explicit ThreadRing(uint32_t thread_id) : tid(thread_id) {
      events.resize(kRingCapacity);
    }
    uint32_t tid;
    // Total events ever recorded by this thread; slot = count % capacity.
    std::atomic<uint64_t> count{0};
    std::vector<TraceEvent> events;
  };

  Tracer() = default;
  ThreadRing* MyRing();

  mutable std::mutex rings_mu_;
  std::vector<std::unique_ptr<ThreadRing>> rings_;
};

namespace internal {

// Shared generator for trace and span ids. 0 is reserved for "none"; the
// suppressed sentinel (~0) is unreachable for any realistic run length.
inline std::atomic<uint64_t> g_next_id{1};

inline uint64_t MintId() {
  return g_next_id.fetch_add(1, std::memory_order_relaxed);
}

// 1-in-N root sampling; 0/1 = keep every root. Set before main from
// JIFFY_TRACE_SAMPLE (see trace.cc) or at runtime by tests.
inline std::atomic<uint32_t> g_sample_every{1};

bool SampleRoot();  // Decides one root span's fate.

}  // namespace internal

// Runtime override for JIFFY_TRACE_SAMPLE (testing). 0 and 1 both mean
// "keep every root".
void SetTraceSampleEvery(uint32_t n);

// RAII span: samples the clock on construction iff tracing is enabled,
// installs itself as the thread's current context, and records a complete
// event on destruction (restoring the previous context). `name`/`category`
// must be string literals or InternedName() pointers.
class TraceSpan {
 public:
  // Child of the thread's current context (or a new sampled root).
  TraceSpan(const char* name, const char* category)
      : TraceSpan(name, category, g_trace_context, /*explicit_parent=*/false) {}

  // Child of an explicitly captured context — the cross-thread hand-off
  // constructor (repartitioner hints, repair work). An inactive `parent`
  // falls back to the thread-local context.
  TraceSpan(const char* name, const char* category, const TraceContext& parent)
      : TraceSpan(name, category, parent, /*explicit_parent=*/true) {}

  ~TraceSpan() {
    if (start_ == kInactive) {
      return;
    }
    TraceEvent ev;
    ev.name = name_;
    ev.category = category_;
    ev.start_ns = start_;
    ev.duration_ns = RealClock::Instance()->Now() - start_;
    ev.trace_id = ctx_.trace_id == kSuppressedTrace ? 0 : ctx_.trace_id;
    ev.span_id = ctx_.span_id;
    ev.parent_id = ctx_.parent_id;
    ev.attr = attr_;
    Tracer::Global()->RecordEvent(ev);
    g_trace_context = prev_;
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  // Context minted for this span — capture it for cross-thread hand-offs.
  // Inactive (all-zero) when tracing is off or the root was sampled out.
  TraceContext context() const {
    return ctx_.trace_id == kSuppressedTrace ? TraceContext{} : ctx_;
  }

  // Attaches a label rendered into the exported args (e.g. tenant). The
  // pointer must outlive the tracer: literal or InternedName().
  void SetAttr(const char* attr) { attr_ = attr; }

 private:
  TraceSpan(const char* name, const char* category, const TraceContext& parent,
            bool explicit_parent)
      : name_(name), category_(category) {
    if (!TracingEnabled()) {
      start_ = kInactive;
      return;
    }
    prev_ = g_trace_context;
    const TraceContext& base =
        (explicit_parent && !parent.active() ? prev_ : parent);
    if (!base.active()) {
      // Root: mint a new trace or suppress the whole subtree.
      if (internal::SampleRoot()) {
        ctx_.trace_id = internal::MintId();
        ctx_.span_id = internal::MintId();
      } else {
        ctx_.trace_id = kSuppressedTrace;
      }
    } else if (base.trace_id == kSuppressedTrace) {
      ctx_.trace_id = kSuppressedTrace;
    } else {
      ctx_.trace_id = base.trace_id;
      ctx_.parent_id = base.span_id;
      ctx_.span_id = internal::MintId();
    }
    g_trace_context = ctx_;
    start_ = RealClock::Instance()->Now();
  }

  static constexpr TimeNs kInactive = -1;
  const char* name_;
  const char* category_;
  const char* attr_ = nullptr;
  TraceContext prev_;
  TraceContext ctx_;
  TimeNs start_ = kInactive;
};

// Times a mutex acquisition as a "lock"-category span (the span covers the
// wait, not the critical section), then holds the lock for the scope. When
// tracing is off this is exactly a lock_guard plus one branch.
class TracedLockGuard {
 public:
  TracedLockGuard(std::mutex& mu, const char* name) : mu_(mu) {
    if (TracingEnabled()) {
      const TimeNs start = RealClock::Instance()->Now();
      mu_.lock();
      Tracer::Global()->RecordComplete(name, "lock", start,
                                       RealClock::Instance()->Now() - start);
    } else {
      mu_.lock();
    }
  }
  ~TracedLockGuard() { mu_.unlock(); }
  TracedLockGuard(const TracedLockGuard&) = delete;
  TracedLockGuard& operator=(const TracedLockGuard&) = delete;

 private:
  std::mutex& mu_;
};

#define JIFFY_OBS_CONCAT_INNER(a, b) a##b
#define JIFFY_OBS_CONCAT(a, b) JIFFY_OBS_CONCAT_INNER(a, b)

// One scoped span. Usage: JIFFY_TRACE_SPAN("kv.put", "client");
#define JIFFY_TRACE_SPAN(name, category)       \
  ::jiffy::obs::TraceSpan JIFFY_OBS_CONCAT(    \
      jiffy_trace_span_, __LINE__)(name, category)

// Scoped span continuing an explicitly captured TraceContext (cross-thread).
#define JIFFY_TRACE_SPAN_UNDER(name, category, parent) \
  ::jiffy::obs::TraceSpan JIFFY_OBS_CONCAT(            \
      jiffy_trace_span_, __LINE__)(name, category, parent)

}  // namespace obs
}  // namespace jiffy

#endif  // SRC_OBS_TRACE_H_
