#include "src/persistent/persistent_store.h"

#include <utility>

namespace jiffy {

SimObjectStore::SimObjectStore(const char* name,
                               std::shared_ptr<Transport> transport)
    : name_(name), transport_(std::move(transport)) {}

Status SimObjectStore::Put(const std::string& path, std::string data) {
  if (transport_ != nullptr) {
    transport_->RoundTrip(data.size() + path.size(), 64);
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto it = objects_.find(path);
  if (it != objects_.end()) {
    total_bytes_ -= it->second.size();
    it->second = std::move(data);
    total_bytes_ += it->second.size();
  } else {
    total_bytes_ += data.size();
    objects_.emplace(path, std::move(data));
  }
  return Status::Ok();
}

Result<std::string> SimObjectStore::Get(const std::string& path) {
  size_t resp_size = 0;
  std::string data;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = objects_.find(path);
    if (it == objects_.end()) {
      // A miss still costs a round trip on a real object store.
      if (transport_ != nullptr) {
        transport_->RoundTrip(path.size(), 64);
      }
      return NotFound("no object at " + path);
    }
    data = it->second;
    resp_size = data.size();
  }
  if (transport_ != nullptr) {
    transport_->RoundTrip(path.size(), resp_size);
  }
  return data;
}

Status SimObjectStore::Delete(const std::string& path) {
  if (transport_ != nullptr) {
    transport_->RoundTrip(path.size(), 64);
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto it = objects_.find(path);
  if (it == objects_.end()) {
    return NotFound("no object at " + path);
  }
  total_bytes_ -= it->second.size();
  objects_.erase(it);
  return Status::Ok();
}

bool SimObjectStore::Exists(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  return objects_.count(path) > 0;
}

std::vector<std::string> SimObjectStore::List(const std::string& prefix) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  for (auto it = objects_.lower_bound(prefix); it != objects_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) {
      break;
    }
    out.push_back(it->first);
  }
  return out;
}

DurationNs SimObjectStore::WriteCost(size_t bytes) const {
  if (transport_ == nullptr) {
    return 0;
  }
  // Deterministic: model without jitter.
  NetworkModel m = transport_->model();
  m.jitter = 0;
  return m.RoundTrip(bytes, 64, nullptr);
}

DurationNs SimObjectStore::ReadCost(size_t bytes) const {
  if (transport_ == nullptr) {
    return 0;
  }
  NetworkModel m = transport_->model();
  m.jitter = 0;
  return m.RoundTrip(64, bytes, nullptr);
}

size_t SimObjectStore::object_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return objects_.size();
}

size_t SimObjectStore::total_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_bytes_;
}

std::unique_ptr<SimObjectStore> MakeLocalStore() {
  return std::make_unique<SimObjectStore>("local", nullptr);
}

std::unique_ptr<SimObjectStore> MakeS3Store(Transport::Mode mode,
                                            Clock* clock) {
  NetworkModel m;
  m.base_latency = 12 * kMillisecond;
  m.bandwidth_bytes_per_sec = 80e6;
  m.jitter = 3 * kMillisecond;
  m.service_floor = 1 * kMillisecond;
  return std::make_unique<SimObjectStore>(
      "s3", std::make_shared<Transport>(m, mode, clock, /*seed=*/101));
}

std::unique_ptr<SimObjectStore> MakeSsdStore(Transport::Mode mode,
                                             Clock* clock) {
  NetworkModel m;
  m.base_latency = 40 * kMicrosecond;
  m.bandwidth_bytes_per_sec = 500e6;
  m.jitter = 10 * kMicrosecond;
  m.service_floor = 20 * kMicrosecond;
  return std::make_unique<SimObjectStore>(
      "ssd", std::make_shared<Transport>(m, mode, clock, /*seed=*/102));
}

}  // namespace jiffy
