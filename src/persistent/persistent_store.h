// Persistent (secondary) storage tiers.
//
// Jiffy flushes expired address-prefix data here (§3.2) and loads it back on
// demand; Pocket spills to an SSD tier and Elasticache overflows to S3 when
// DRAM capacity is exhausted (§6.1). All tiers share one interface: a flat
// object store plus a deterministic cost model, so virtual-time experiments
// can charge tier access without sleeping.

#ifndef SRC_PERSISTENT_PERSISTENT_STORE_H_
#define SRC_PERSISTENT_PERSISTENT_STORE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/net/network.h"

namespace jiffy {

class PersistentStore {
 public:
  virtual ~PersistentStore() = default;

  // Stores `data` at `path`, replacing any previous object.
  virtual Status Put(const std::string& path, std::string data) = 0;

  // Reads the object at `path`.
  virtual Result<std::string> Get(const std::string& path) = 0;

  virtual Status Delete(const std::string& path) = 0;
  virtual bool Exists(const std::string& path) const = 0;

  // Objects stored under a path prefix, sorted (for flush/load of a whole
  // address prefix).
  virtual std::vector<std::string> List(const std::string& prefix) const = 0;

  // Deterministic access-cost model for this tier (no jitter), used by
  // trace-replay experiments to charge slow-tier I/O in virtual time.
  virtual DurationNs WriteCost(size_t bytes) const = 0;
  virtual DurationNs ReadCost(size_t bytes) const = 0;

  // Human-readable tier name ("s3", "ssd", "local").
  virtual const char* name() const = 0;
};

// In-memory object store with a configurable cost model. `transport` (if
// non-null) is charged/applied on every access, so in kSleep mode access
// really takes tier-time — this is how the S3 and SSD tiers are realized.
class SimObjectStore : public PersistentStore {
 public:
  // Takes ownership of nothing; `transport` must outlive the store (pass
  // nullptr for a free store).
  SimObjectStore(const char* name, std::shared_ptr<Transport> transport);

  Status Put(const std::string& path, std::string data) override;
  Result<std::string> Get(const std::string& path) override;
  Status Delete(const std::string& path) override;
  bool Exists(const std::string& path) const override;
  std::vector<std::string> List(const std::string& prefix) const override;

  DurationNs WriteCost(size_t bytes) const override;
  DurationNs ReadCost(size_t bytes) const override;

  const char* name() const override { return name_; }

  // Totals for utilization reporting.
  size_t object_count() const;
  size_t total_bytes() const;

 private:
  const char* name_;
  std::shared_ptr<Transport> transport_;
  mutable std::mutex mu_;
  std::map<std::string, std::string> objects_;
  size_t total_bytes_ = 0;
};

// Tier factories with cost models calibrated to the paper's Fig 10 envelope.

// Zero-cost local store for unit tests.
std::unique_ptr<SimObjectStore> MakeLocalStore();

// S3-like object store: ~12 ms one-way floor, ~80 MB/s effective.
std::unique_ptr<SimObjectStore> MakeS3Store(Transport::Mode mode, Clock* clock);

// SSD spill tier (Pocket's secondary tier): ~80 us access, ~500 MB/s.
std::unique_ptr<SimObjectStore> MakeSsdStore(Transport::Mode mode, Clock* clock);

}  // namespace jiffy

#endif  // SRC_PERSISTENT_PERSISTENT_STORE_H_
