#include "src/rsm/group.h"

#include <algorithm>
#include <utility>

namespace jiffy {
namespace rsm {

namespace {

// Modeled wire size of one replication RPC envelope (headers, indices,
// terms) on top of the payload bytes.
constexpr size_t kRpcEnvelopeBytes = 64;

size_t EntryWireBytes(const LogEntry& e) {
  size_t bytes = kRpcEnvelopeBytes;
  for (const auto& [job, blob] : e.blobs) {
    bytes += job.size() + blob.size();
  }
  bytes += 8 * (e.new_blocks.size() + e.freed_blocks.size());
  return bytes;
}

}  // namespace

ControllerGroup::ControllerGroup(const JiffyConfig& config, Clock* clock,
                                 std::vector<Controller*> controllers,
                                 Transport* net)
    : config_(config),
      clock_(clock),
      net_(net),
      partitioned_(controllers.size(), false),
      armed_(controllers.size(), CrashPoint::kNone) {
  replicas_.reserve(controllers.size());
  for (size_t i = 0; i < controllers.size(); ++i) {
    replicas_.push_back(std::make_unique<Replica>(
        static_cast<int>(i), this, controllers[i], clock, config));
    controllers[i]->AttachMetadataLog(replicas_.back().get());
  }
}

int ControllerGroup::ReachableCountLocked(int i) const {
  int n = 0;
  for (int j = 0; j < size(); ++j) {
    if (AliveLocked(j) && ReachableLocked(i, j)) {
      ++n;
    }
  }
  return n;
}

void ControllerGroup::ChargeMessage(size_t req_bytes, size_t resp_bytes) {
  if (net_ == nullptr) {
    return;
  }
  if (charge_batching_) {
    ++batch_msgs_;
    batch_req_bytes_ += req_bytes;
    batch_resp_bytes_ += resp_bytes;
    return;
  }
  net_->RoundTrip(req_bytes, resp_bytes);
}

bool ControllerGroup::MaybeCrashLocked(int i, CrashPoint point) {
  if (armed_[static_cast<size_t>(i)] != point) {
    return false;
  }
  armed_[static_cast<size_t>(i)] = CrashPoint::kNone;
  CrashLocked(i);
  return true;
}

void ControllerGroup::CrashLocked(int i) {
  Replica* r = replicas_[static_cast<size_t>(i)].get();
  r->crashed_.store(true, std::memory_order_release);
  r->leader_.store(false, std::memory_order_release);
  r->lease_expiry_.store(0, std::memory_order_release);
  r->reads_ok_after_.store(0, std::memory_order_release);
  r->Demote();
  // Volatile Raft state is lost; the commit index is relearned from
  // whichever leader the replica rejoins.
  r->commit_index_ = r->base_index_;
}

bool ControllerGroup::SyncFollowerLocked(int li, int f) {
  Replica* leader = replicas_[static_cast<size_t>(li)].get();
  Replica* fol = replicas_[static_cast<size_t>(f)].get();
  uint64_t next =
      std::min(leader->last_index(), fol->last_index()) + 1;
  // Bounded back-off loop: `next` only moves down (toward the snapshot
  // base) or terminates, so this cannot spin forever.
  for (;;) {
    if (next <= leader->base_index_) {
      // The entries the follower needs are compacted away — ship the
      // snapshot first, then the remaining suffix.
      ChargeMessage(leader->base_snapshot_.size() + kRpcEnvelopeBytes,
                    kRpcEnvelopeBytes);
      if (!fol->HandleInstallSnapshot(leader->current_term_,
                                      leader->base_snapshot_,
                                      leader->base_index_, leader->base_term_,
                                      li)) {
        return false;
      }
      next = leader->base_index_ + 1;
    }
    const uint64_t prev = next - 1;
    std::vector<LogEntry> entries(
        leader->log_.begin() +
            static_cast<long>(next - leader->base_index_ - 1),
        leader->log_.end());
    size_t bytes = kRpcEnvelopeBytes;
    for (const LogEntry& e : entries) {
      bytes += EntryWireBytes(e);
    }
    ChargeMessage(bytes, kRpcEnvelopeBytes);
    uint64_t fterm = 0;
    if (fol->HandleAppend(leader->current_term_, prev, leader->TermAt(prev),
                          entries, leader->commit_index_, li, &fterm)) {
      return true;
    }
    if (fterm > leader->current_term_ || fol->crashed()) {
      return false;
    }
    if (prev <= leader->base_index_) {
      // Mismatch at the base itself: the follower's log diverges below our
      // snapshot — force the snapshot branch.
      next = leader->base_index_;
    } else {
      --next;
    }
  }
}

int ControllerGroup::BroadcastAppendLocked(int li) {
  int acks = 1;  // The leader's own log holds the entries.
  // Fan-out is parallel on a real wire: accumulate per-follower charges and
  // apply them as one batched exchange (one propagation, summed bytes).
  charge_batching_ = true;
  for (int p = 0; p < size(); ++p) {
    if (p == li || !AliveLocked(p) || !ReachableLocked(li, p)) {
      continue;
    }
    if (SyncFollowerLocked(li, p)) {
      ++acks;
    }
  }
  charge_batching_ = false;
  if (batch_msgs_ > 0 && net_ != nullptr) {
    net_->RoundTripBatch(batch_msgs_, batch_req_bytes_, batch_resp_bytes_);
  }
  batch_msgs_ = 0;
  batch_req_bytes_ = 0;
  batch_resp_bytes_ = 0;
  return acks;
}

Status ControllerGroup::EnsureLeader() {
  std::lock_guard<std::mutex> lock(mu_);
  return EnsureLeaderLocked();
}

Status ControllerGroup::EnsureLeaderLocked() {
  for (int i = 0; i < size(); ++i) {
    Replica* r = replicas_[static_cast<size_t>(i)].get();
    if (r->is_leader() && !r->crashed() &&
        ReachableCountLocked(i) >= QuorumSize()) {
      MaybeHeartbeatLocked(i);
      if (r->is_leader()) {
        return Status::Ok();
      }
      break;  // Heartbeat lost quorum; fall through to an election.
    }
  }
  // Failure detection costs one election timeout of modeled time; charge it
  // on sleeping transports so benches observe a realistic failover window
  // (virtual-time tests stay instant).
  if (net_ != nullptr && net_->mode() == Transport::Mode::kSleep) {
    clock_->SleepFor(config_.rsm_election_timeout);
  }
  // Read-lease guard: a live but unreachable previous leader may keep
  // serving leased reads until this instant.
  TimeNs stale_lease = 0;
  for (const auto& r : replicas_) {
    if (r->is_leader() && !r->crashed()) {
      stale_lease = std::max(
          stale_lease, r->lease_expiry_.load(std::memory_order_acquire));
    }
  }
  // Candidates in log up-to-dateness order — the order Raft's vote rule
  // favors anyway; trying them in it makes the election deterministic.
  std::vector<int> cands;
  for (int i = 0; i < size(); ++i) {
    if (AliveLocked(i)) {
      cands.push_back(i);
    }
  }
  std::sort(cands.begin(), cands.end(), [&](int a, int b) {
    Replica* ra = replicas_[static_cast<size_t>(a)].get();
    Replica* rb = replicas_[static_cast<size_t>(b)].get();
    if (ra->LastTerm() != rb->LastTerm()) {
      return ra->LastTerm() > rb->LastTerm();
    }
    if (ra->last_index() != rb->last_index()) {
      return ra->last_index() > rb->last_index();
    }
    return a < b;
  });
  uint64_t next_term = 0;
  for (const auto& r : replicas_) {
    next_term = std::max(next_term, r->current_term_);
  }
  ++next_term;
  for (int cand : cands) {
    if (ReachableCountLocked(cand) < QuorumSize()) {
      continue;
    }
    Replica* c = replicas_[static_cast<size_t>(cand)].get();
    c->current_term_ = std::max(c->current_term_ + 1, next_term);
    c->voted_term_ = c->current_term_;
    c->voted_for_ = cand;
    int votes = 1;
    for (int p = 0; p < size(); ++p) {
      if (p == cand || !AliveLocked(p) || !ReachableLocked(cand, p)) {
        continue;
      }
      ChargeMessage(kRpcEnvelopeBytes, kRpcEnvelopeBytes);
      if (replicas_[static_cast<size_t>(p)]->HandleVote(
              c->current_term_, cand, c->last_index(), c->LastTerm())) {
        ++votes;
      }
    }
    if (votes >= QuorumSize()) {
      Status st = PromoteLocked(cand, stale_lease);
      if (st.ok()) {
        return st;
      }
    }
    next_term = c->current_term_ + 1;
  }
  return Unavailable("no controller quorum: election failed");
}

Status ControllerGroup::PromoteLocked(int i, TimeNs stale_lease_expiry) {
  Replica* r = replicas_[static_cast<size_t>(i)].get();
  const uint64_t old_commit = r->commit_index_;
  r->leader_.store(true, std::memory_order_release);
  r->leader_hint_.store(i, std::memory_order_relaxed);
  // Commit a no-op in the new term: the only way a leader may conclude that
  // inherited entries are committed (Raft §5.4.2 — never count replicas for
  // an old term's entries).
  LogEntry noop;
  noop.term = r->current_term_;
  noop.index = r->last_index() + 1;
  noop.op = "noop";
  noop.origin = i;
  r->log_.push_back(std::move(noop));
  const int acks = BroadcastAppendLocked(i);
  if (acks < QuorumSize()) {
    r->log_.pop_back();
    r->leader_.store(false, std::memory_order_release);
    return Unavailable("candidate could not commit its no-op");
  }
  r->commit_index_ = r->last_index();
  r->Materialize();
  // Deferred frees of entries committed in the failover window (a previous
  // leader may have died between quorum and executing them).
  r->ExecuteCommittedFrees(old_commit);
  const TimeNs now = clock_->Now();
  r->lease_expiry_.store(now + config_.rsm_read_lease,
                         std::memory_order_release);
  r->reads_ok_after_.store(std::max(now, stale_lease_expiry),
                           std::memory_order_release);
  // Second round so followers learn the advanced commit index promptly.
  BroadcastAppendLocked(i);
  return Status::Ok();
}

void ControllerGroup::MaybeHeartbeatLocked(int li) {
  Replica* r = replicas_[static_cast<size_t>(li)].get();
  const TimeNs now = clock_->Now();
  if (now + config_.rsm_read_lease / 2 <
      r->lease_expiry_.load(std::memory_order_acquire)) {
    return;  // Lease still fresh.
  }
  const int acks = BroadcastAppendLocked(li);
  if (acks >= QuorumSize()) {
    r->lease_expiry_.store(now + config_.rsm_read_lease,
                           std::memory_order_release);
  } else {
    // Cut off from the quorum: stop serving immediately (conservative —
    // the lease would allow reads until expiry) and force an election.
    r->leader_.store(false, std::memory_order_release);
    r->lease_expiry_.store(0, std::memory_order_release);
  }
}

void ControllerGroup::MaybeCompactLocked(int li, bool force) {
  Replica* r = replicas_[static_cast<size_t>(li)].get();
  if (r->commit_index_ <= r->base_index_) {
    return;
  }
  if (!force &&
      r->commit_index_ - r->base_index_ < config_.rsm_snapshot_threshold) {
    return;
  }
  // Applied-index barrier: the group lock is held, so no replicated
  // mutation is in flight anywhere — every committed entry is applied on
  // this leader, and the snapshot covers exactly [1, commit_index_].
  std::string snap = r->ctl_->Snapshot(r->commit_index_);
  const uint64_t snap_index = r->commit_index_;
  const uint64_t snap_term = r->TermAt(snap_index);
  for (int p = 0; p < size(); ++p) {
    if (p == li || !AliveLocked(p) || !ReachableLocked(li, p)) {
      continue;
    }
    ChargeMessage(snap.size() + kRpcEnvelopeBytes, kRpcEnvelopeBytes);
    replicas_[static_cast<size_t>(p)]->HandleInstallSnapshot(
        r->current_term_, snap, snap_index, snap_term, li);
  }
  r->log_.erase(r->log_.begin(),
                r->log_.begin() + static_cast<long>(snap_index -
                                                    r->base_index_));
  r->base_snapshot_ = std::move(snap);
  r->base_index_ = snap_index;
  r->base_term_ = snap_term;
}

Controller* ControllerGroup::LeaderController() {
  std::lock_guard<std::mutex> lock(mu_);
  Status st = EnsureLeaderLocked();
  (void)st;  // No quorum is handled below: fall back to a live replica.
  // Highest term wins: a partitioned old leader may still carry its flag.
  Replica* best = nullptr;
  for (const auto& r : replicas_) {
    if (r->is_leader() && !r->crashed() &&
        (best == nullptr || r->current_term_ > best->current_term_)) {
      best = r.get();
    }
  }
  if (best != nullptr) {
    return best->controller();
  }
  // No quorum: hand back some live replica; its mutating ops answer
  // kUnavailable, which is the honest state of the control plane.
  for (const auto& r : replicas_) {
    if (!r->crashed()) {
      return r->controller();
    }
  }
  return replicas_[0]->controller();
}

int ControllerGroup::leader_index() const {
  std::lock_guard<std::mutex> lock(mu_);
  // A partitioned old leader keeps its flag until it hears the new term, so
  // two replicas can claim leadership; the one with the higher term is the
  // real one.
  int best = -1;
  for (int i = 0; i < size(); ++i) {
    const Replica* r = replicas_[static_cast<size_t>(i)].get();
    if (r->is_leader() && !r->crashed() &&
        (best < 0 ||
         r->current_term_ > replicas_[static_cast<size_t>(best)]->current_term_)) {
      best = i;
    }
  }
  return best;
}

void ControllerGroup::Crash(int i) {
  std::lock_guard<std::mutex> lock(mu_);
  CrashLocked(i);
}

void ControllerGroup::Restart(int i) {
  std::lock_guard<std::mutex> lock(mu_);
  replicas_[static_cast<size_t>(i)]->crashed_.store(
      false, std::memory_order_release);
}

void ControllerGroup::Partition(int i) {
  std::lock_guard<std::mutex> lock(mu_);
  partitioned_[static_cast<size_t>(i)] = true;
}

void ControllerGroup::Heal() {
  std::lock_guard<std::mutex> lock(mu_);
  std::fill(partitioned_.begin(), partitioned_.end(), false);
}

void ControllerGroup::ArmCrash(int i, CrashPoint point) {
  std::lock_guard<std::mutex> lock(mu_);
  armed_[static_cast<size_t>(i)] = point;
}

Status ControllerGroup::CompactNow() {
  std::lock_guard<std::mutex> lock(mu_);
  Status st = EnsureLeaderLocked();
  if (!st.ok()) {
    return st;
  }
  for (int i = 0; i < size(); ++i) {
    if (replicas_[static_cast<size_t>(i)]->is_leader()) {
      MaybeCompactLocked(i, /*force=*/true);
      return Status::Ok();
    }
  }
  return Unavailable("no leader to compact");
}

}  // namespace rsm
}  // namespace jiffy
