// A replicated controller group: N Replicas over one shard's metadata
// (DESIGN.md §14).
//
// The group is the in-process model of a Raft deployment: replicas exchange
// AppendEntries / RequestVote / InstallSnapshot as direct calls whose wire
// cost is charged to the control-plane Transport, and the fault surface —
// crash, restart, partition, armed crash points — is explicit so tests can
// kill the leader at every point of the commit protocol.
//
// Elections are demand-driven rather than timer-driven: EnsureLeader() is
// called on every leader lookup (JiffyCluster::ControllerFor) and runs a
// synchronous election when the known leader is crashed or cut off from a
// quorum. This keeps the group deterministic and free of background
// threads; the election-timeout knob is charged as modeled time on
// sleeping transports so benches still observe a realistic failover window.
//
// Read-lease safety: a leader may serve lookups locally until
// `rsm_read_lease` after its last quorum contact. A new leader elected
// while the old one is partitioned (not crashed) therefore refuses reads
// until the old lease has provably lapsed (reads_ok_after_), which is what
// keeps reads linearizable across failover.

#ifndef SRC_RSM_GROUP_H_
#define SRC_RSM_GROUP_H_

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/clock.h"
#include "src/common/config.h"
#include "src/common/status.h"
#include "src/core/controller.h"
#include "src/net/network.h"
#include "src/rsm/replica.h"

namespace jiffy {
namespace rsm {

class ControllerGroup {
 public:
  // `controllers` are the shard's replica controllers (not owned; one per
  // replica, all wired to the same shared data plane). The group attaches
  // itself to each via Controller::AttachMetadataLog. `net` models the
  // replication wire (may be null: zero-cost messages).
  ControllerGroup(const JiffyConfig& config, Clock* clock,
                  std::vector<Controller*> controllers, Transport* net);

  ControllerGroup(const ControllerGroup&) = delete;
  ControllerGroup& operator=(const ControllerGroup&) = delete;

  int size() const { return static_cast<int>(replicas_.size()); }
  int QuorumSize() const { return size() / 2 + 1; }

  // Elects a leader if none is reachable and valid. kUnavailable when no
  // candidate can reach a quorum (e.g. a majority crashed).
  Status EnsureLeader();

  // The current leader's controller (electing one first if needed),
  // heartbeat-refreshing its read lease when it is half-expired. Falls back
  // to some live replica's controller when no quorum exists — operations
  // against it fail with kUnavailable, which is the honest answer.
  Controller* LeaderController();

  // Index of the current leader, -1 when none. Does not trigger elections.
  int leader_index() const;

  Replica* replica(int i) { return replicas_[i].get(); }

  // --- Fault injection (tests / bench) --------------------------------------

  // Fail-stop: volatile state is lost (commit index, lease, materialized
  // controller); the log, term, vote, and snapshot survive to Restart().
  void Crash(int i);
  void Restart(int i);

  // Isolates replica `i` from every other replica (both directions). A
  // partitioned leader keeps serving leased reads until its lease lapses —
  // exactly the window the read-lease safety argument covers.
  void Partition(int i);
  void Heal();

  // Arms a one-shot crash of replica `i` at the given protocol point.
  void ArmCrash(int i, CrashPoint point);

  // Forces log compaction on the current leader regardless of the
  // threshold (test hook for the snapshot-install path).
  Status CompactNow();

 private:
  friend class Replica;

  bool ReachableLocked(int a, int b) const {
    return !partitioned_[a] && !partitioned_[b];
  }
  bool AliveLocked(int i) const { return !replicas_[i]->crashed(); }
  // Peers (including self) replica `i` can currently exchange messages
  // with; an election or commit from `i` needs QuorumSize() of them.
  int ReachableCountLocked(int i) const;

  // Charges one replication RPC to the modeled transport. Inside a
  // broadcast the charge is accumulated and applied once as a batched
  // exchange — the leader fans AppendEntries out in parallel, so the
  // quorum latency is one round trip, not one per follower.
  void ChargeMessage(size_t req_bytes, size_t resp_bytes);

  // Fires an armed crash point. Returns true when replica `i` just
  // crashed (the caller must unwind).
  bool MaybeCrashLocked(int i, CrashPoint point);
  void CrashLocked(int i);

  // Brings follower `f` up to date with leader `li`'s log (snapshot +
  // back-off append loop) and returns true when the follower acked the
  // leader's full log.
  bool SyncFollowerLocked(int li, int f);

  // AppendEntries fan-out from leader `li` (entries the followers are
  // missing + the leader's commit index). Returns the ack count including
  // the leader itself.
  int BroadcastAppendLocked(int li);

  // Election + promotion internals.
  Status EnsureLeaderLocked();
  Status PromoteLocked(int i, TimeNs stale_lease_expiry);
  void MaybeHeartbeatLocked(int li);
  void MaybeCompactLocked(int li, bool force);

  const JiffyConfig config_;
  Clock* const clock_;
  Transport* const net_;

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Replica>> replicas_;
  std::vector<bool> partitioned_;
  std::vector<CrashPoint> armed_;
  // Parallel fan-out accounting (all guarded by mu_).
  bool charge_batching_ = false;
  size_t batch_msgs_ = 0;
  size_t batch_req_bytes_ = 0;
  size_t batch_resp_bytes_ = 0;
};

}  // namespace rsm
}  // namespace jiffy

#endif  // SRC_RSM_GROUP_H_
