#include "src/rsm/replica.h"

#include <algorithm>
#include <map>
#include <utility>

#include "src/rsm/group.h"

namespace jiffy {
namespace rsm {

Replica::Replica(int index, ControllerGroup* group, Controller* controller,
                 Clock* clock, const JiffyConfig& config)
    : index_(index),
      group_(group),
      ctl_(controller),
      clock_(clock),
      config_(config) {}

bool Replica::MayServeReads() {
  if (!leader_.load(std::memory_order_acquire) ||
      crashed_.load(std::memory_order_acquire)) {
    return false;
  }
  const TimeNs now = clock_->Now();
  return now >= reads_ok_after_.load(std::memory_order_acquire) &&
         now < lease_expiry_.load(std::memory_order_acquire);
}

Status Replica::Replicate(const char* op, const std::vector<std::string>& jobs,
                          const std::function<Status()>& fn) {
  std::lock_guard<std::mutex> lock(group_->mu_);
  if (crashed_.load(std::memory_order_relaxed) ||
      !leader_.load(std::memory_order_relaxed)) {
    return Unavailable("not the metadata leader (leader hint: replica " +
                       std::to_string(leader_hint_.load()) + ")");
  }
  std::vector<std::string> affected = jobs;
  if (affected.empty()) {
    affected = ctl_->JobIds();
  }
  // Pre-state: rollback target if the entry fails to reach a quorum. A
  // blob-cache hit (the common case on the hot path) is the state as of
  // the last appended entry, which is exactly the pre-state here — only a
  // miss pays a serialization.
  std::vector<std::pair<std::string, std::string>> before;
  std::vector<uint64_t> before_refs;
  before.reserve(affected.size());
  for (const std::string& job : affected) {
    auto cached = leader_blob_cache_.find(job);
    before.emplace_back(job, cached != leader_blob_cache_.end()
                                 ? cached->second
                                 : ctl_->CaptureJob(job));
    for (uint64_t r : ctl_->JobBlockRefs(job)) {
      before_refs.push_back(r);
    }
  }
  // Execute live. The scope suppresses re-replication and defers
  // destructive block frees until the entry commits.
  std::vector<BlockId> deferred;
  Status fn_st;
  {
    Controller::ReplicatedApplyScope scope(&deferred);
    fn_st = fn();
  }
  if (!fn_st.ok()) {
    // Controller mutators validate before mutating, so a failed op left no
    // effects behind — nothing to replicate, nothing to roll back.
    return fn_st;
  }
  LogEntry entry;
  entry.term = current_term_;
  entry.index = last_index() + 1;
  entry.op = op;
  entry.origin = index_;
  std::vector<uint64_t> after_refs;
  bool changed = !deferred.empty();
  for (size_t i = 0; i < affected.size(); ++i) {
    std::string blob = ctl_->CaptureJob(affected[i]);
    if (blob != before[i].second) {
      changed = true;
    }
    for (uint64_t r : ctl_->JobBlockRefs(affected[i])) {
      after_refs.push_back(r);
    }
    entry.blobs.emplace_back(affected[i], std::move(blob));
  }
  if (!changed) {
    // Effectively read-only (e.g. an expiry scan that found nothing):
    // appending would only churn the log. Seed the cache so the next op on
    // these jobs skips the pre-state capture.
    for (auto& [job, blob] : entry.blobs) {
      leader_blob_cache_[job] = std::move(blob);
    }
    return fn_st;
  }
  std::sort(before_refs.begin(), before_refs.end());
  std::sort(after_refs.begin(), after_refs.end());
  std::set_difference(after_refs.begin(), after_refs.end(),
                      before_refs.begin(), before_refs.end(),
                      std::back_inserter(entry.new_blocks));
  for (const BlockId& b : deferred) {
    entry.freed_blocks.push_back(b.Packed());
  }
  log_.push_back(std::move(entry));
  if (group_->MaybeCrashLocked(index_, CrashPoint::kLeaderAfterAppend)) {
    return Unavailable("metadata leader crashed");
  }
  const int acks = group_->BroadcastAppendLocked(index_);
  if (group_->MaybeCrashLocked(index_, CrashPoint::kLeaderAfterReplicate)) {
    return Unavailable("metadata leader crashed");
  }
  if (acks < group_->QuorumSize()) {
    // Not committed → not visible: restore the pre-state blobs, release the
    // blocks the op allocated, and drop the entry. Deferred frees are
    // simply discarded — the blocks stay owned by the restored pre-state.
    const LogEntry& e = log_.back();
    for (const auto& [job, blob] : before) {
      ctl_->InstallJobBlob(job, blob);
    }
    ctl_->ReleaseBlocksById(e.new_blocks);
    log_.pop_back();
    leader_blob_cache_.clear();
    leader_.store(false, std::memory_order_release);
    lease_expiry_.store(0, std::memory_order_release);
    return Unavailable("metadata op lost quorum; rolled back");
  }
  commit_index_ = last_index();
  for (const auto& [job, blob] : log_.back().blobs) {
    leader_blob_cache_[job] = blob;
  }
  // Quorum contact doubles as a read-lease refresh.
  lease_expiry_.store(clock_->Now() + config_.rsm_read_lease,
                      std::memory_order_release);
  ctl_->PerformDeferredFrees(deferred);
  group_->MaybeCompactLocked(index_, /*force=*/false);
  if (group_->MaybeCrashLocked(index_, CrashPoint::kLeaderAfterCommit)) {
    // The op IS committed; the caller sees a failure and retries, which is
    // why retried mutations must be idempotent (leases) or deduplicated
    // (Cas sessions).
    return Unavailable("metadata leader crashed after commit");
  }
  return fn_st;
}

bool Replica::HandleAppend(uint64_t term, uint64_t prev_index,
                           uint64_t prev_term,
                           const std::vector<LogEntry>& entries,
                           uint64_t leader_commit, int leader_index,
                           uint64_t* term_out) {
  *term_out = current_term_;
  if (crashed_.load(std::memory_order_relaxed)) {
    return false;
  }
  if (term < current_term_) {
    return false;
  }
  current_term_ = term;
  *term_out = term;
  if (leader_index != index_) {
    if (leader_.exchange(false)) {
      lease_expiry_.store(0, std::memory_order_release);
    }
    Demote();
    leader_hint_.store(leader_index, std::memory_order_relaxed);
  }
  // Entries at or below our snapshot base are committed and identical by
  // construction; skip them instead of failing the prev check.
  const std::vector<LogEntry>* use = &entries;
  std::vector<LogEntry> trimmed;
  if (prev_index < base_index_) {
    if (prev_index + entries.size() <= base_index_) {
      use = nullptr;  // Everything offered is already covered.
    } else {
      trimmed.assign(entries.begin() + (base_index_ - prev_index),
                     entries.end());
      use = &trimmed;
    }
    prev_index = base_index_;
    prev_term = base_term_;
  }
  if (prev_index > last_index() || TermAt(prev_index) != prev_term) {
    return false;
  }
  if (use != nullptr && !use->empty()) {
    if (group_->MaybeCrashLocked(index_, CrashPoint::kFollowerBeforeAppend)) {
      return false;
    }
    for (const LogEntry& e : *use) {
      if (e.index <= last_index()) {
        if (TermAt(e.index) == e.term) {
          continue;  // Already stored.
        }
        TruncateFrom(e.index);
      }
      log_.push_back(e);
    }
    if (group_->MaybeCrashLocked(index_, CrashPoint::kFollowerAfterAppend)) {
      return false;  // Stored, but the ack never reaches the leader.
    }
  }
  if (leader_commit > commit_index_) {
    commit_index_ = std::min(leader_commit, last_index());
  }
  return true;
}

bool Replica::HandleVote(uint64_t term, int candidate,
                         uint64_t last_log_index, uint64_t last_log_term) {
  if (crashed_.load(std::memory_order_relaxed)) {
    return false;
  }
  if (term < current_term_) {
    return false;
  }
  if (term > current_term_) {
    current_term_ = term;
    if (leader_.exchange(false)) {
      lease_expiry_.store(0, std::memory_order_release);
    }
  }
  if (voted_term_ == term && voted_for_ != candidate) {
    return false;
  }
  const bool up_to_date =
      last_log_term > LastTerm() ||
      (last_log_term == LastTerm() && last_log_index >= last_index());
  if (!up_to_date) {
    return false;
  }
  voted_term_ = term;
  voted_for_ = candidate;
  return true;
}

bool Replica::HandleInstallSnapshot(uint64_t term, const std::string& snapshot,
                                    uint64_t snap_index, uint64_t snap_term,
                                    int leader_index) {
  if (crashed_.load(std::memory_order_relaxed)) {
    return false;
  }
  if (term < current_term_) {
    return false;
  }
  current_term_ = term;
  if (leader_index != index_) {
    if (leader_.exchange(false)) {
      lease_expiry_.store(0, std::memory_order_release);
    }
    Demote();
    leader_hint_.store(leader_index, std::memory_order_relaxed);
  }
  if (group_->MaybeCrashLocked(index_,
                               CrashPoint::kFollowerDuringSnapshotInstall)) {
    return false;  // Crashed before the snapshot was durably installed.
  }
  if (snap_index <= base_index_) {
    return true;  // Stale snapshot; our base already covers it.
  }
  if (last_index() > snap_index && TermAt(snap_index) == snap_term) {
    // Our suffix past the snapshot is consistent — keep it, drop the
    // covered prefix (committed entries; never GC'd).
    log_.erase(log_.begin(),
               log_.begin() + static_cast<long>(snap_index - base_index_));
  } else {
    // Conflicting or shorter log. Entries above the snapshot index are
    // uncommitted conflicts — GC the ones we originated; entries at or
    // below it are committed (the snapshot covers them) — never GC'd.
    while (!log_.empty() && last_index() > snap_index) {
      LogEntry& e = log_.back();
      if (e.origin == index_) {
        ctl_->ReleaseBlocksById(e.new_blocks);
      }
      log_.pop_back();
    }
    log_.clear();
  }
  base_snapshot_ = snapshot;
  base_index_ = snap_index;
  base_term_ = snap_term;
  commit_index_ = std::max(commit_index_, snap_index);
  return true;
}

void Replica::TruncateFrom(uint64_t from_index) {
  leader_blob_cache_.clear();
  while (!log_.empty() && last_index() >= from_index) {
    LogEntry& e = log_.back();
    // Conflict-truncated entries were never committed. Their originator is
    // the only holder of the blocks they allocated against the shared data
    // plane, so it frees them here — the orphan-block GC for a leader that
    // crashed (or lost quorum) mid-operation.
    if (e.origin == index_) {
      ctl_->ReleaseBlocksById(e.new_blocks);
    }
    log_.pop_back();
  }
}

void Replica::Materialize() {
  ctl_->ResetMetadata();
  if (!base_snapshot_.empty()) {
    // Keep `migrating` brackets: the repartitioner re-resolves the leader
    // and either commits (require_migrating) or aborts via EndMigration.
    ctl_->Restore(base_snapshot_, /*preserve_migrating=*/true);
  }
  // Blobs are complete job states, so only the latest committed blob per
  // job matters; walk in commit order so later drops/creates win.
  std::map<std::string, const std::string*> latest;
  for (uint64_t i = base_index_ + 1; i <= commit_index_; ++i) {
    for (const auto& [job, blob] : EntryAt(i).blobs) {
      latest[job] = &blob;
    }
  }
  for (const auto& [job, blob] : latest) {
    ctl_->InstallJobBlob(job, *blob);
  }
  // A promoted replica must never stamp a renewal plan whose TaskNode
  // pointers belong to a pre-failover hierarchy.
  ctl_->InvalidateRenewalPlans();
  leader_blob_cache_.clear();
  materialized_ = true;
}

void Replica::Demote() {
  leader_blob_cache_.clear();
  if (materialized_) {
    ctl_->ResetMetadata();
    materialized_ = false;
  }
}

void Replica::ExecuteCommittedFrees(uint64_t from_exclusive) {
  // Entries at or below `from_exclusive` were committed — and their frees
  // executed — by a previous leader before this replica learned the commit
  // index (Replicate frees before the commit index is ever broadcast).
  // Entries above it may or may not have been freed by a leader that
  // crashed right after committing; replaying is safe because no operation
  // can have re-allocated the blocks in between (the group had no leader),
  // so the liveness/double-free guards make the replay a no-op.
  uint64_t start = std::max(from_exclusive, base_index_);
  for (uint64_t i = start + 1; i <= commit_index_; ++i) {
    const LogEntry& e = EntryAt(i);
    if (!e.freed_blocks.empty()) {
      ctl_->ReleaseBlocksById(e.freed_blocks);
    }
  }
}

}  // namespace rsm
}  // namespace jiffy
