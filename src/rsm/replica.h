// One member of a replicated controller group (DESIGN.md §14).
//
// A Replica pairs a Controller with its position in a Raft-style metadata
// log. The leader's controller is *materialized* (it holds the live job
// hierarchies and executes operations against the shared data plane);
// follower controllers are empty shells that merely store the log — per-job
// metadata blobs captured by the leader — and materialize only on
// promotion. This "replicate outputs, not inputs" scheme keeps the quorum
// path cheap (serialize the affected job, ship bytes) and makes follower
// apply deterministic by construction: installing a blob cannot diverge,
// re-executing an operation could.
//
// Thread-safety: everything except the atomics below is guarded by the
// owning ControllerGroup's mutex — elections, appends, and Replicate all
// run under it, serializing log mutations exactly like a single Raft
// thread. MayServeReads()/LeaderHint() read only atomics so the
// lookup-heavy controller paths never touch the group lock.

#ifndef SRC_RSM_REPLICA_H_
#define SRC_RSM_REPLICA_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/common/clock.h"
#include "src/common/config.h"
#include "src/common/status.h"
#include "src/core/controller.h"
#include "src/core/meta_log.h"

namespace jiffy {
namespace rsm {

class ControllerGroup;

// Injected crash points for the fault matrix (tests arm one via
// ControllerGroup::ArmCrash; it fires once and crashes the replica).
enum class CrashPoint {
  kNone = 0,
  // Leader inside Replicate: after appending to its own log, before any
  // follower has seen the entry (the entry must NOT survive failover).
  kLeaderAfterAppend,
  // Leader after the fan-out, before advancing its commit index (the entry
  // reached a quorum of logs and MUST survive failover).
  kLeaderAfterReplicate,
  // Leader after quorum commit, before acknowledging the client (the op is
  // durable; the client's retry must observe exactly-once semantics).
  kLeaderAfterCommit,
  // Follower receiving AppendEntries: crash before storing the entries.
  kFollowerBeforeAppend,
  // Follower crash after durably appending but before the ack reaches the
  // leader (the leader may or may not still reach quorum).
  kFollowerAfterAppend,
  // Follower crash in the middle of InstallSnapshot (snapshot discarded).
  kFollowerDuringSnapshotInstall,
};

// One metadata-log entry: the complete post-state of every job the
// operation touched. An empty blob means "the job was dropped".
struct LogEntry {
  uint64_t term = 0;
  uint64_t index = 0;
  std::string op;
  std::vector<std::pair<std::string, std::string>> blobs;  // job → state
  // Packed BlockIds the operation allocated. If the entry dies (conflict
  // truncation after a failed leader), its originator frees these — an
  // uncommitted entry is the only holder of such blocks.
  std::vector<uint64_t> new_blocks;
  // Packed BlockIds whose destructive free was deferred to commit
  // (Controller::ReplicatedApplyScope). Executed once, by whichever leader
  // first advances its commit index past the entry.
  std::vector<uint64_t> freed_blocks;
  // Replica index that appended this entry as leader (GC ownership).
  int origin = -1;
};

class Replica : public MetadataLog {
 public:
  Replica(int index, ControllerGroup* group, Controller* controller,
          Clock* clock, const JiffyConfig& config);

  Replica(const Replica&) = delete;
  Replica& operator=(const Replica&) = delete;

  // --- MetadataLog ----------------------------------------------------------

  // Leader-only: executes `fn` live, captures the affected jobs' post-state
  // blobs, quorum-commits the entry, and only then acknowledges. On lost
  // quorum the local state is rolled back to the captured pre-state blobs
  // and kUnavailable is returned (the op is "not committed → not visible").
  Status Replicate(const char* op, const std::vector<std::string>& jobs,
                   const std::function<Status()>& fn) override;

  // Lock-free read-lease check: leader + unexpired lease + past the
  // previous leader's possible lease window.
  bool MayServeReads() override;

  int LeaderHint() const override {
    return leader_hint_.load(std::memory_order_relaxed);
  }

  // --- Introspection (tests / bench) ---------------------------------------

  Controller* controller() { return ctl_; }
  int index() const { return index_; }
  bool is_leader() const { return leader_.load(std::memory_order_relaxed); }
  bool crashed() const { return crashed_.load(std::memory_order_relaxed); }
  uint64_t term() const { return current_term_; }
  uint64_t commit_index() const { return commit_index_; }
  uint64_t last_index() const {
    return base_index_ + static_cast<uint64_t>(log_.size());
  }

 private:
  friend class ControllerGroup;

  uint64_t TermAt(uint64_t index) const {
    if (index == base_index_) {
      return base_term_;
    }
    return log_[index - base_index_ - 1].term;
  }
  uint64_t LastTerm() const { return TermAt(last_index()); }
  const LogEntry& EntryAt(uint64_t index) const {
    return log_[index - base_index_ - 1];
  }

  // AppendEntries receiver. Returns false (with the follower's term) when
  // the term is stale or the prev check fails; the leader backs off and
  // retries from an earlier index. Conflicting suffixes are truncated with
  // origin GC (see TruncateFrom).
  bool HandleAppend(uint64_t term, uint64_t prev_index, uint64_t prev_term,
                    const std::vector<LogEntry>& entries,
                    uint64_t leader_commit, int leader_index,
                    uint64_t* term_out);

  // RequestVote receiver: grants iff the candidate's term is current, this
  // replica has not voted for someone else this term, and the candidate's
  // log is at least as up-to-date (the Raft election safety rule).
  bool HandleVote(uint64_t term, int candidate, uint64_t last_log_index,
                  uint64_t last_log_term);

  // InstallSnapshot receiver: replaces the log prefix with a snapshot taken
  // at an applied-index barrier on the leader.
  bool HandleInstallSnapshot(uint64_t term, const std::string& snapshot,
                             uint64_t snap_index, uint64_t snap_term,
                             int leader_index);

  // Drops log entries at `from_index` and above. Entries this replica
  // originated (as a failed leader) free their `new_blocks` — they were
  // never committed anywhere, so this is the orphan-block GC for
  // crash-before-quorum effects on the shared data plane.
  void TruncateFrom(uint64_t from_index);

  // Rebuilds the controller from base snapshot + committed blobs (latest
  // blob per job wins, in log order). Called on promotion.
  void Materialize();

  // Follower/demotion cleanup: clears any materialized state so a stale
  // pre-failover hierarchy can never serve again.
  void Demote();

  // Executes deferred frees of entries in (upto_exclusive, commit_index_]
  // that this replica has not yet executed. Idempotent across leaders: the
  // allocator's double-free guard plus the liveness check in
  // Controller::PerformDeferredFrees make replays harmless.
  void ExecuteCommittedFrees(uint64_t from_exclusive);

  const int index_;
  ControllerGroup* const group_;
  Controller* const ctl_;
  Clock* const clock_;
  const JiffyConfig config_;

  // "Durable" state: survives Crash()/Restart().
  uint64_t current_term_ = 0;
  uint64_t voted_term_ = 0;
  int voted_for_ = -1;
  std::vector<LogEntry> log_;
  std::string base_snapshot_;  // Snapshot covering indices <= base_index_.
  uint64_t base_index_ = 0;
  uint64_t base_term_ = 0;

  // Volatile state: reset on crash.
  uint64_t commit_index_ = 0;
  bool materialized_ = false;
  // Leader-side cache of each job's blob as of the last appended entry
  // (guarded by the group mutex). Every metadata mutation flows through
  // Replicate, so a cache hit IS the pre-state: the hot path serializes
  // each affected job once (the post-state) instead of twice, and the
  // cached copy doubles as the rollback image on lost quorum. Cleared on
  // any transition that can change ctl_ outside Replicate (promotion,
  // demotion, crash, truncation) — a miss just re-captures.
  std::map<std::string, std::string> leader_blob_cache_;

  // Lock-free flags for the read path.
  std::atomic<bool> leader_{false};
  std::atomic<bool> crashed_{false};
  std::atomic<int> leader_hint_{-1};
  std::atomic<TimeNs> lease_expiry_{0};
  std::atomic<TimeNs> reads_ok_after_{0};
};

}  // namespace rsm
}  // namespace jiffy

#endif  // SRC_RSM_REPLICA_H_
