#include "src/wire/block_service.h"

#include <mutex>
#include <utility>
#include <vector>

#include "src/block/arena.h"
#include "src/ds/kv_content.h"

namespace jiffy {

WireResponse WireBlockService::Handle(const DecodedRequest& req) {
  if (req.op == WireOp::kPing) {
    return ResponseBuilder(WireOp::kPing, req.tag).Finish();
  }
  Block* block = resolver_ != nullptr ? resolver_(req.block) : nullptr;
  if (block == nullptr) {
    return ErrorResponse(req.op, req.tag, StatusCode::kUnavailable);
  }
  return HandleKv(req, block);
}

WireResponse WireBlockService::HandleKv(const DecodedRequest& req,
                                        Block* block) {
  ResponseBuilder builder(req.op, req.tag, req.keys.size());
  switch (req.op) {
    case WireOp::kMultiPut: {
      std::vector<std::pair<std::string_view, std::string_view>> pairs;
      pairs.reserve(req.keys.size());
      for (size_t i = 0; i < req.keys.size(); ++i) {
        pairs.emplace_back(req.keys[i], req.values[i]);
      }
      std::vector<Status> statuses;
      {
        std::lock_guard<std::mutex> lock(block->mu());
        auto* shard = ContentAs<KvShard>(block->content());
        if (shard == nullptr) {
          builder.SetOverall(StatusCode::kFailedPrecondition);
          return std::move(builder).Finish();
        }
        block->CountOps(pairs.size());
        shard->MultiPut(pairs, &statuses);
      }
      for (const Status& st : statuses) {
        builder.AddItem(st.code());
      }
      break;
    }
    case WireOp::kMultiGet: {
      std::vector<Result<std::string_view>> results;
      {
        std::lock_guard<std::mutex> lock(block->mu());
        auto* shard = ContentAs<KvShard>(block->content());
        if (shard == nullptr) {
          builder.SetOverall(StatusCode::kFailedPrecondition);
          return std::move(builder).Finish();
        }
        block->CountOps(req.keys.size());
        shard->MultiGet(req.keys, &results);
        // Pin while the mutex still protects the arena: the views stay
        // byte-stable until the response is fully written, even against a
        // concurrent migration or compaction (DESIGN.md §11).
        builder.AddKeepalive(
            std::make_shared<ArenaPin>(ArenaPin(shard->arena())));
      }
      for (const auto& r : results) {
        if (r.ok()) {
          builder.AddItem(StatusCode::kOk, r.value());
        } else {
          builder.AddItem(r.status().code());
        }
      }
      break;
    }
    case WireOp::kMultiDelete: {
      std::vector<Status> statuses;
      {
        std::lock_guard<std::mutex> lock(block->mu());
        auto* shard = ContentAs<KvShard>(block->content());
        if (shard == nullptr) {
          builder.SetOverall(StatusCode::kFailedPrecondition);
          return std::move(builder).Finish();
        }
        block->CountOps(req.keys.size());
        shard->MultiDelete(req.keys, &statuses);
      }
      for (const Status& st : statuses) {
        builder.AddItem(st.code());
      }
      break;
    }
    case WireOp::kPing:
      break;  // Handled above.
  }
  return std::move(builder).Finish();
}

}  // namespace jiffy
