#include "src/wire/block_service.h"

#include <utility>
#include <vector>

#include "src/block/arena.h"
#include "src/ds/kv_content.h"

namespace jiffy {

WireResponse WireBlockService::Handle(const DecodedRequest& req,
                                      const ExecContext& ctx) {
  if (req.op == WireOp::kPing) {
    return ResponseBuilder(WireOp::kPing, req.tag).Finish();
  }
  Block* block = resolver_ != nullptr ? resolver_(req.block) : nullptr;
  if (block == nullptr) {
    return ErrorResponse(req.op, req.tag, StatusCode::kUnavailable);
  }
  return HandleKv(req, block, ctx);
}

WireResponse WireBlockService::HandleKv(const DecodedRequest& req,
                                        Block* block,
                                        const ExecContext& ctx) {
  ResponseBuilder builder(req.op, req.tag, req.keys.size());
  double usage_after = -1.0;
  // Owner fast path: the batch runs without mu(). TryBeginBiasedOp only
  // succeeds when this loop holds the bias, and the handshake guarantees
  // every shared-mode accessor is either outside the block or spinning in
  // OpLock until EndBiasedOp.
  if (ctx.affine && block->TryBeginBiasedOp(ctx.loop_tag)) {
    ExecuteKv(req, block, &builder, &usage_after);
    block->EndBiasedOp();
  } else {
    // Shared path: one OpLock hold — the in-process batch cost. An affine
    // executor re-grants itself the bias on the way out (legal: grant
    // requires holding the OpLock), so the next batch is lock-free again.
    Block::OpLock lock(*block);
    ExecuteKv(req, block, &builder, &usage_after);
    if (ctx.affine) {
      block->GrantBias(ctx.loop_tag);
    }
  }
  // Pressure is reported outside the block hold, like the in-process
  // clients' SignalOverload (Flag is a CAS, no lock interaction).
  if (usage_after >= 0.0 && pressure_) {
    pressure_(block, usage_after);
  }
  return std::move(builder).Finish();
}

void WireBlockService::ExecuteKv(const DecodedRequest& req, Block* block,
                                 ResponseBuilder* builder,
                                 double* usage_after) {
  auto* shard = ContentAs<KvShard>(block->content());
  if (shard == nullptr) {
    builder->SetOverall(StatusCode::kFailedPrecondition);
    return;
  }
  switch (req.op) {
    case WireOp::kMultiPut: {
      std::vector<std::pair<std::string_view, std::string_view>> pairs;
      pairs.reserve(req.keys.size());
      for (size_t i = 0; i < req.keys.size(); ++i) {
        pairs.emplace_back(req.keys[i], req.values[i]);
      }
      std::vector<Status> statuses;
      block->CountOps(pairs.size());
      shard->MultiPut(pairs, &statuses);
      for (const Status& st : statuses) {
        builder->AddItem(st.code());
      }
      if (usage_after != nullptr && block->capacity() > 0) {
        *usage_after = static_cast<double>(shard->used_bytes()) /
                       static_cast<double>(block->capacity());
      }
      break;
    }
    case WireOp::kMultiGet: {
      std::vector<Result<std::string_view>> results;
      block->CountOps(req.keys.size());
      shard->MultiGet(req.keys, &results);
      // Pin while we still exclude migration/compaction (biased op or
      // OpLock): the views stay byte-stable until the response is fully
      // written (DESIGN.md §11). ArenaPin's count is atomic, so pinning is
      // legal on the lock-free path too.
      builder->AddKeepalive(
          std::make_shared<ArenaPin>(ArenaPin(shard->arena())));
      for (const auto& r : results) {
        if (r.ok()) {
          builder->AddItem(StatusCode::kOk, r.value());
        } else {
          builder->AddItem(r.status().code());
        }
      }
      break;
    }
    case WireOp::kMultiDelete: {
      std::vector<Status> statuses;
      block->CountOps(req.keys.size());
      shard->MultiDelete(req.keys, &statuses);
      for (const Status& st : statuses) {
        builder->AddItem(st.code());
      }
      break;
    }
    case WireOp::kPing:
      break;  // Handled by Handle().
  }
}

}  // namespace jiffy
