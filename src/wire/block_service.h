// Block-aware dispatcher for the wire data plane (DESIGN.md §12).
//
// The TCP server below this layer is protocol-only; WireBlockService is
// where decoded frames meet block operators. It resolves the request's
// packed BlockId through an injected resolver (an in-process cluster, or a
// standalone jiffy_server's own block table), applies the batch under one
// block-mutex hold — the same single acquisition the in-process batch path
// pays — and builds the response frame.
//
// Zero-copy contract: for MultiGet the values in the response are
// string_views into the shard's arena, pinned (ArenaPin, taken while the
// mutex is still held) and carried as the response's keepalive, so the
// bytes flow read-op → writev with no server-side materialization. The
// CopyMeter tally is untouched by this layer.

#ifndef SRC_WIRE_BLOCK_SERVICE_H_
#define SRC_WIRE_BLOCK_SERVICE_H_

#include <functional>
#include <memory>

#include "src/block/block.h"
#include "src/net/frame.h"

namespace jiffy {

class WireBlockService {
 public:
  // Maps a packed BlockId to its block; nullptr = unknown/failed server
  // (the client sees kUnavailable and runs its normal failover).
  using BlockResolver = std::function<Block*(uint64_t packed)>;

  explicit WireBlockService(BlockResolver resolver)
      : resolver_(std::move(resolver)) {}

  // Handles one decoded request frame. Shaped for TcpServer::Handler.
  WireResponse Handle(const DecodedRequest& req);

 private:
  WireResponse HandleKv(const DecodedRequest& req, Block* block);

  BlockResolver resolver_;
};

}  // namespace jiffy

#endif  // SRC_WIRE_BLOCK_SERVICE_H_
