// Block-aware dispatcher for the wire data plane (DESIGN.md §12, §13).
//
// The TCP server below this layer is protocol-only; WireBlockService is
// where decoded frames meet block operators. It resolves the request's
// packed BlockId through an injected resolver (an in-process cluster, or a
// standalone jiffy_server's own block table) and applies the batch under
// the block's single-writer discipline:
//
//   - Affine execution (ctx.affine, thread-per-core server): the executing
//     thread is the block's owning event loop. If the block is biased to
//     this loop the whole batch runs WITHOUT Block::mu() — the bias
//     handshake guarantees no shared-mode accessor is inside the block. If
//     the bias is not held (first touch, or a repartitioner/in-process
//     client revoked it), the batch falls back to one OpLock hold and
//     re-grants the bias on the way out, so steady state returns to
//     lock-free.
//   - Shared execution (!ctx.affine): one OpLock hold, exactly the
//     in-process batch path's cost.
//
// Zero-copy contract: for MultiGet the values in the response are
// string_views into the shard's arena, pinned (ArenaPin, taken while the
// block is still held in either mode) and carried as the response's
// keepalive, so the bytes flow read-op → writev with no server-side
// materialization. The CopyMeter tally is untouched by this layer.

#ifndef SRC_WIRE_BLOCK_SERVICE_H_
#define SRC_WIRE_BLOCK_SERVICE_H_

#include <functional>
#include <memory>

#include "src/block/block.h"
#include "src/net/frame.h"
#include "src/net/tcp_server.h"

namespace jiffy {

class WireBlockService {
 public:
  // Maps a packed BlockId to its block; nullptr = unknown/failed server
  // (the client sees kUnavailable and runs its normal failover).
  using BlockResolver = std::function<Block*(uint64_t packed)>;

  // Observes post-op block usage (fraction of capacity) after a mutating
  // batch, OUTSIDE the block hold. The gateway wires this to the cluster's
  // background repartitioner so wire-only traffic raises the same §9
  // overload pressure an in-process client would (Repartitioner::Flag
  // dedupes, so calling per batch is cheap).
  using PressureHook = std::function<void(Block* block, double usage)>;

  explicit WireBlockService(BlockResolver resolver)
      : resolver_(std::move(resolver)) {}

  void set_pressure_hook(PressureHook hook) { pressure_ = std::move(hook); }

  // Handles one decoded request frame. Shaped for TcpServer::ExecHandler.
  WireResponse Handle(const DecodedRequest& req, const ExecContext& ctx);

  // Shared-mode convenience (legacy Handler shape; tests).
  WireResponse Handle(const DecodedRequest& req) {
    return Handle(req, ExecContext{});
  }

 private:
  WireResponse HandleKv(const DecodedRequest& req, Block* block,
                        const ExecContext& ctx);
  // Runs the batch against the block's content and fills `builder`. The
  // caller guarantees exclusive content access (biased op or OpLock).
  // `usage_after` (may be null) receives used/capacity after a mutating op,
  // -1 when the op mutated nothing.
  void ExecuteKv(const DecodedRequest& req, Block* block,
                 ResponseBuilder* builder, double* usage_after);

  BlockResolver resolver_;
  PressureHook pressure_;
};

}  // namespace jiffy

#endif  // SRC_WIRE_BLOCK_SERVICE_H_
