#include "src/wire/gateway.h"

namespace jiffy {

WireGateway::WireGateway(JiffyCluster* cluster, Options options)
    : cluster_(cluster),
      service_([cluster](uint64_t packed) {
        return cluster->ResolveBlock(BlockId::FromPacked(packed));
      }) {
  // Wire-only write traffic must raise the same §9 scale-up pressure an
  // in-process client would, or blocks written exclusively over the wire
  // never split. The repartitioner re-validates span/replication before
  // acting, so the hook only pre-filters on the usage threshold.
  if (cluster->repartitioner() != nullptr) {
    service_.set_pressure_hook([cluster](Block* block, double usage) {
      if (usage < cluster->config().repartition_high_threshold) {
        return;
      }
      Repartitioner::Hint hint;
      hint.job = block->owner_job();
      hint.prefix = block->owner_prefix();
      if (hint.job.empty() || hint.prefix.empty()) {
        return;
      }
      hint.block = block->id();
      hint.type = DsType::kKvStore;
      hint.pressure = Repartitioner::Pressure::kOverload;
      cluster->repartitioner()->Flag(block, std::move(hint));
    });
  }
  TcpServer::Options server_options;
  server_options.port = options.port;
  server_options.threads = options.threads;
  server_options.affinity = options.affinity;
  server_options.sndbuf = options.sndbuf;
  server_options.rcvbuf = options.rcvbuf;
  server_options.nodelay = options.nodelay;
  server_options.reorder_window = options.reorder_window;
  server_options.reorder_seed = options.reorder_seed;
  server_ = std::make_unique<TcpServer>(
      TcpServer::ExecHandler([this](const DecodedRequest& req,
                                    const ExecContext& ctx) {
        return service_.Handle(req, ctx);
      }),
      server_options);
}

WireMap WireGateway::MapFor(const PartitionMap& map) const {
  WireMap out;
  out.total_slots = cluster_->config().kv_hash_slots;
  WireEndpoint ep;
  ep.host = "127.0.0.1";
  ep.port = server_->port();
  out.endpoints.push_back(ep);
  for (const PartitionEntry& entry : map.entries) {
    WireRange range;
    range.slot_lo = static_cast<uint32_t>(entry.lo);
    range.slot_hi = static_cast<uint32_t>(entry.hi);
    range.block = entry.block.Packed();
    range.endpoint = 0;
    out.ranges.push_back(range);
  }
  return out;
}

}  // namespace jiffy
