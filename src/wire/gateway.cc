#include "src/wire/gateway.h"

namespace jiffy {

WireGateway::WireGateway(JiffyCluster* cluster, Options options)
    : cluster_(cluster),
      service_([cluster](uint64_t packed) {
        return cluster->ResolveBlock(BlockId::FromPacked(packed));
      }) {
  TcpServer::Options server_options;
  server_options.port = options.port;
  server_options.threads = options.threads;
  server_options.reorder_window = options.reorder_window;
  server_options.reorder_seed = options.reorder_seed;
  server_ = std::make_unique<TcpServer>(
      [this](const DecodedRequest& req) { return service_.Handle(req); },
      server_options);
}

WireMap WireGateway::MapFor(const PartitionMap& map) const {
  WireMap out;
  out.total_slots = cluster_->config().kv_hash_slots;
  WireEndpoint ep;
  ep.host = "127.0.0.1";
  ep.port = server_->port();
  out.endpoints.push_back(ep);
  for (const PartitionEntry& entry : map.entries) {
    WireRange range;
    range.slot_lo = static_cast<uint32_t>(entry.lo);
    range.slot_hi = static_cast<uint32_t>(entry.hi);
    range.block = entry.block.Packed();
    range.endpoint = 0;
    out.ranges.push_back(range);
  }
  return out;
}

}  // namespace jiffy
