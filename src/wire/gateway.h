// WireGateway: serves an in-process JiffyCluster over the binary TCP
// protocol (DESIGN.md §12).
//
// The gateway is how the existing single-process deployment grows a real
// wire: it boots a TcpServer whose handler resolves packed BlockIds through
// JiffyCluster::ResolveBlock — so failed servers are unreachable over the
// wire exactly as they are in-process — and it snapshots a KvClient's
// cached PartitionMap into the WireMap a WireKvClient routes by. Every
// mixed-mode test and the loopback wire bench are built from this: same
// blocks, same data, reachable both by direct call and by socket.

#ifndef SRC_WIRE_GATEWAY_H_
#define SRC_WIRE_GATEWAY_H_

#include <memory>

#include "src/cluster/cluster.h"
#include "src/core/hierarchy.h"
#include "src/net/tcp_server.h"
#include "src/wire/block_service.h"
#include "src/wire/wire_kv_client.h"

namespace jiffy {

class WireGateway {
 public:
  struct Options {
    uint16_t port = 0;  // 0 = ephemeral.
    int threads = 2;
    // Thread-per-core block→loop routing with single-writer execution
    // (DESIGN.md §13), passed through to TcpServer.
    bool affinity = false;
    // Socket buffer knobs for accepted connections (0 = kernel default).
    int sndbuf = 0;
    int rcvbuf = 0;
    // TCP_NODELAY on accepted sockets; off only for baseline benches.
    bool nodelay = true;
    // Test hooks, passed through to TcpServer.
    size_t reorder_window = 0;
    uint64_t reorder_seed = 1;
  };

  explicit WireGateway(JiffyCluster* cluster)
      : WireGateway(cluster, Options()) {}
  WireGateway(JiffyCluster* cluster, Options options);

  Status Start() { return server_->Start(); }
  void Stop() { server_->Stop(); }
  uint16_t port() const { return server_->port(); }
  TcpServer* server() { return server_.get(); }

  // Routing snapshot for a KV prefix's partition map, with every range
  // served by this gateway's endpoint. `total_slots` comes from the cluster
  // config. Chain reads over the wire hit the entry's primary block (the
  // map carries no per-replica endpoints yet; DESIGN.md §12).
  WireMap MapFor(const PartitionMap& map) const;

 private:
  JiffyCluster* cluster_;
  WireBlockService service_;
  std::unique_ptr<TcpServer> server_;
};

}  // namespace jiffy

#endif  // SRC_WIRE_GATEWAY_H_
