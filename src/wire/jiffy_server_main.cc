// jiffy_server: standalone wire data-plane server + multi-process launcher
// (DESIGN.md §12, README "Multi-process launch").
//
// Standalone mode hosts one MemoryServer's worth of KV blocks behind the
// binary TCP protocol and serves until SIGTERM:
//
//   jiffy_server --port 0 --server-id 0 --blocks 2 --slots 1024 \
//                --slot-lo 0 --slot-hi 512
//
// On boot it prints exactly one line the launcher (or an operator script)
// parses to discover the kernel-assigned port:
//
//   LISTENING <port> server=<id> blocks=<n> slots=<lo>-<hi>
//
// Launcher mode forks N such servers as real OS processes, splits the slot
// space evenly, and optionally drives a verification workload across them
// with a WireKvClient before shutting the fleet down:
//
//   jiffy_server --spawn 3 --probe 200
//
// The probe exercises the full stack — binary frames over loopback TCP into
// three separate processes, completions matched by tag — and exits 0 only
// when every routed put/get/delete answered correctly.

#include <signal.h>
#include <stdio.h>
#include <stdlib.h>
#include <string.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "src/block/block.h"
#include "src/ds/kv_content.h"
#include "src/net/tcp_server.h"
#include "src/wire/block_service.h"
#include "src/wire/wire_kv_client.h"

namespace jiffy {
namespace {

std::atomic<bool> g_stop{false};

void OnSignal(int) { g_stop.store(true); }

struct ServerArgs {
  uint16_t port = 0;
  int threads = 2;       // --loops / --threads.
  int affinity = 1;      // Thread-per-core block→loop routing (DESIGN.md §13).
  int sndbuf = 0;        // SO_SNDBUF for accepted sockets; 0 = kernel default.
  int rcvbuf = 0;        // SO_RCVBUF; 0 = kernel default.
  uint32_t server_id = 0;
  uint32_t blocks = 1;
  size_t block_bytes = 1u << 20;
  uint32_t slots = 1024;
  uint32_t slot_lo = 0;
  uint32_t slot_hi = 1024;
  int spawn = 0;
  int probe = 0;
};

// Slot share of block `b` of `nblocks` covering [lo, hi) — the single
// definition both a serving child and the probing parent compute from.
void BlockShare(uint32_t lo, uint32_t hi, uint32_t b, uint32_t nblocks,
                uint32_t* out_lo, uint32_t* out_hi) {
  const uint64_t span = hi - lo;
  *out_lo = lo + static_cast<uint32_t>(span * b / nblocks);
  *out_hi = lo + static_cast<uint32_t>(span * (b + 1) / nblocks);
}

// Serves `args`'s slot share until SIGTERM. `announce_fd` receives the
// LISTENING line (a launcher pipe, or 1 for standalone stdout).
int RunServer(const ServerArgs& args, int announce_fd) {
  signal(SIGTERM, OnSignal);
  signal(SIGINT, OnSignal);

  MemoryServer server(args.server_id, args.blocks, args.block_bytes);
  for (uint32_t b = 0; b < args.blocks; ++b) {
    uint32_t lo = 0, hi = 0;
    BlockShare(args.slot_lo, args.slot_hi, b, args.blocks, &lo, &hi);
    Block* block = server.block(b);
    block->InstallContent(
        std::make_unique<KvShard>(args.block_bytes, lo, hi, args.slots));
    block->set_allocated(true);
  }

  WireBlockService service([&server, &args](uint64_t packed) -> Block* {
    const BlockId id = BlockId::FromPacked(packed);
    if (id.server_id != args.server_id || server.failed()) {
      return nullptr;
    }
    return server.block(id.slot);
  });

  TcpServer::Options options;
  options.port = args.port;
  options.threads = args.threads;
  options.affinity = args.affinity != 0;
  options.sndbuf = args.sndbuf;
  options.rcvbuf = args.rcvbuf;
  TcpServer tcp(
      TcpServer::ExecHandler(
          [&service](const DecodedRequest& req, const ExecContext& ctx) {
            return service.Handle(req, ctx);
          }),
      options);
  const Status st = tcp.Start();
  if (!st.ok()) {
    fprintf(stderr, "jiffy_server: %s\n", st.ToString().c_str());
    return 1;
  }

  char line[128];
  const int len = snprintf(line, sizeof(line),
                           "LISTENING %u server=%u blocks=%u slots=%u-%u\n",
                           tcp.port(), args.server_id, args.blocks,
                           args.slot_lo, args.slot_hi);
  if (write(announce_fd, line, static_cast<size_t>(len)) != len) {
    return 1;
  }

  while (!g_stop.load()) {
    usleep(50 * 1000);
  }
  tcp.Stop();
  return 0;
}

struct Child {
  pid_t pid = 0;
  int pipe_rd = -1;
  uint16_t port = 0;
  ServerArgs args;
};

int RunLauncher(const ServerArgs& base) {
  std::vector<Child> children;
  for (int i = 0; i < base.spawn; ++i) {
    Child child;
    child.args = base;
    child.args.server_id = static_cast<uint32_t>(i);
    child.args.port = 0;  // Every child takes an ephemeral port.
    BlockShare(0, base.slots, static_cast<uint32_t>(i),
               static_cast<uint32_t>(base.spawn), &child.args.slot_lo,
               &child.args.slot_hi);
    int fds[2];
    if (pipe(fds) != 0) {
      perror("pipe");
      return 1;
    }
    const pid_t pid = fork();
    if (pid < 0) {
      perror("fork");
      return 1;
    }
    if (pid == 0) {
      close(fds[0]);
      const int rc = RunServer(child.args, fds[1]);
      close(fds[1]);
      _exit(rc);
    }
    close(fds[1]);
    child.pid = pid;
    child.pipe_rd = fds[0];
    children.push_back(child);
  }

  auto shutdown = [&children](int exit_code) {
    for (const Child& c : children) {
      kill(c.pid, SIGTERM);
    }
    for (const Child& c : children) {
      int status = 0;
      waitpid(c.pid, &status, 0);
      close(c.pipe_rd);
    }
    return exit_code;
  };

  // Discover each child's port from its LISTENING line.
  for (Child& child : children) {
    char buf[128] = {0};
    size_t got = 0;
    while (got < sizeof(buf) - 1 && (got == 0 || buf[got - 1] != '\n')) {
      const ssize_t n = read(child.pipe_rd, buf + got, 1);
      if (n <= 0) {
        break;
      }
      got += static_cast<size_t>(n);
    }
    unsigned port = 0;
    if (sscanf(buf, "LISTENING %u", &port) != 1 || port == 0) {
      fprintf(stderr, "launcher: child %d announced nothing\n", child.pid);
      return shutdown(1);
    }
    child.port = static_cast<uint16_t>(port);
    printf("launcher: server %u pid=%d port=%u slots=%u-%u\n",
           child.args.server_id, child.pid, port, child.args.slot_lo,
           child.args.slot_hi);
  }

  if (base.probe <= 0) {
    printf("launcher: %d servers up; SIGTERM to stop\n", base.spawn);
    signal(SIGTERM, OnSignal);
    signal(SIGINT, OnSignal);
    while (!g_stop.load()) {
      usleep(100 * 1000);
    }
    return shutdown(0);
  }

  // --- Probe: real traffic through every process ---------------------------
  WireMap map;
  map.total_slots = base.slots;
  for (const Child& child : children) {
    WireEndpoint ep;
    ep.port = child.port;
    ep.server_id = child.args.server_id;
    map.endpoints.push_back(ep);
    for (uint32_t b = 0; b < child.args.blocks; ++b) {
      uint32_t lo = 0, hi = 0;
      BlockShare(child.args.slot_lo, child.args.slot_hi, b,
                 child.args.blocks, &lo, &hi);
      WireRange range;
      range.slot_lo = lo;
      range.slot_hi = hi;
      range.block = BlockId{child.args.server_id, b}.Packed();
      range.endpoint = map.endpoints.size() - 1;
      map.ranges.push_back(range);
    }
  }
  WireKvClient client(std::move(map));

  const int n = base.probe;
  std::vector<std::string> keys, values;
  keys.reserve(static_cast<size_t>(n));
  values.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    keys.push_back("probe-key-" + std::to_string(i));
    values.push_back("value-" + std::to_string(i * 7));
  }
  std::vector<std::pair<std::string_view, std::string_view>> pairs;
  std::vector<std::string_view> key_views;
  for (int i = 0; i < n; ++i) {
    pairs.emplace_back(keys[static_cast<size_t>(i)],
                       values[static_cast<size_t>(i)]);
    key_views.emplace_back(keys[static_cast<size_t>(i)]);
  }
  size_t failures = 0;
  for (const Status& st : client.MultiPut(pairs)) {
    failures += st.ok() ? 0 : 1;
  }
  WireValues got = client.MultiGet(key_views);
  for (int i = 0; i < n; ++i) {
    if (!got[static_cast<size_t>(i)].ok() ||
        *got[static_cast<size_t>(i)] != values[static_cast<size_t>(i)]) {
      ++failures;
    }
  }
  for (const Status& st : client.MultiDelete(key_views)) {
    failures += st.ok() ? 0 : 1;
  }
  printf("PROBE %s ops=%d rpcs=%llu servers=%d failures=%zu\n",
         failures == 0 ? "ok" : "FAILED", 3 * n,
         static_cast<unsigned long long>(client.rpcs_sent()), base.spawn,
         failures);
  return shutdown(failures == 0 ? 0 : 1);
}

int Main(int argc, char** argv) {
  ServerArgs args;
  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> long {
      if (i + 1 >= argc) {
        fprintf(stderr, "missing value for %s\n", flag);
        exit(2);
      }
      return atol(argv[++i]);
    };
    if (strcmp(argv[i], "--port") == 0) {
      args.port = static_cast<uint16_t>(next("--port"));
    } else if (strcmp(argv[i], "--threads") == 0 ||
               strcmp(argv[i], "--loops") == 0) {
      args.threads = static_cast<int>(next("--loops"));
    } else if (strcmp(argv[i], "--affinity") == 0) {
      args.affinity = static_cast<int>(next("--affinity"));
    } else if (strcmp(argv[i], "--sndbuf") == 0) {
      args.sndbuf = static_cast<int>(next("--sndbuf"));
    } else if (strcmp(argv[i], "--rcvbuf") == 0) {
      args.rcvbuf = static_cast<int>(next("--rcvbuf"));
    } else if (strcmp(argv[i], "--server-id") == 0) {
      args.server_id = static_cast<uint32_t>(next("--server-id"));
    } else if (strcmp(argv[i], "--blocks") == 0) {
      args.blocks = static_cast<uint32_t>(next("--blocks"));
    } else if (strcmp(argv[i], "--block-bytes") == 0) {
      args.block_bytes = static_cast<size_t>(next("--block-bytes"));
    } else if (strcmp(argv[i], "--slots") == 0) {
      args.slots = static_cast<uint32_t>(next("--slots"));
      args.slot_hi = args.slots;
    } else if (strcmp(argv[i], "--slot-lo") == 0) {
      args.slot_lo = static_cast<uint32_t>(next("--slot-lo"));
    } else if (strcmp(argv[i], "--slot-hi") == 0) {
      args.slot_hi = static_cast<uint32_t>(next("--slot-hi"));
    } else if (strcmp(argv[i], "--spawn") == 0) {
      args.spawn = static_cast<int>(next("--spawn"));
    } else if (strcmp(argv[i], "--probe") == 0) {
      args.probe = static_cast<int>(next("--probe"));
    } else {
      fprintf(stderr,
              "usage: jiffy_server [--port P] [--loops T] [--affinity 0|1]\n"
              "                    [--sndbuf BYTES] [--rcvbuf BYTES]\n"
              "                    [--server-id I] [--blocks B]\n"
              "                    [--block-bytes BYTES] [--slots H]\n"
              "                    [--slot-lo L] [--slot-hi U]\n"
              "                    [--spawn N [--probe OPS]]\n");
      return 2;
    }
  }
  if (args.spawn > 0) {
    return RunLauncher(args);
  }
  return RunServer(args, 1);
}

}  // namespace
}  // namespace jiffy

int main(int argc, char** argv) { return jiffy::Main(argc, argv); }
