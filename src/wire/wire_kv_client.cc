#include "src/wire/wire_kv_client.h"

#include <condition_variable>
#include <mutex>

#include "src/ds/kv_content.h"

namespace jiffy {

namespace {

constexpr size_t kNoRoute = static_cast<size_t>(-1);
constexpr int kMaxStaleRounds = 4;

Status CodeStatus(StatusCode code, const char* what) {
  if (code == StatusCode::kOk) {
    return Status::Ok();
  }
  return Status(code, what);
}

}  // namespace

size_t WireMap::Route(uint32_t slot) const {
  for (size_t i = 0; i < ranges.size(); ++i) {
    if (slot >= ranges[i].slot_lo && slot < ranges[i].slot_hi) {
      return i;
    }
  }
  return kNoRoute;
}

WireMap WireMap::Even(std::vector<WireEndpoint> endpoints,
                      uint32_t total_slots,
                      const std::vector<uint64_t>& blocks) {
  WireMap map;
  map.total_slots = total_slots;
  map.endpoints = std::move(endpoints);
  const size_t n = blocks.size();
  for (size_t i = 0; i < n; ++i) {
    WireRange r;
    r.slot_lo = static_cast<uint32_t>(total_slots * i / n);
    r.slot_hi = static_cast<uint32_t>(total_slots * (i + 1) / n);
    r.block = blocks[i];
    r.endpoint = i % map.endpoints.size();
    map.ranges.push_back(r);
  }
  return map;
}

// Items bound for one block: one frame, one tag, one fault fate.
struct WireKvClient::Group {
  size_t range = 0;
  std::vector<size_t> items;
};

WireKvClient::WireKvClient(WireMap map, Options options)
    : map_(std::move(map)),
      options_(std::move(options)),
      clock_(options_.clock != nullptr ? options_.clock
                                       : RealClock::Instance()),
      pool_([this] {
        TcpConnection::Options defaults;
        defaults.max_in_flight = options_.max_in_flight;
        defaults.coalesce_min_inflight = options_.coalesce_min_inflight;
        defaults.coalesce_window_us = options_.coalesce_window_us;
        defaults.sndbuf = options_.sndbuf;
        defaults.rcvbuf = options_.rcvbuf;
        defaults.faults = options_.faults;
        defaults.faults_on = options_.faults_on;
        defaults.clock = clock_;
        return defaults;
      }()) {}

Status WireKvClient::Put(std::string_view key, std::string_view value) {
  return MultiPut({{key, value}})[0];
}

Result<std::string> WireKvClient::Get(std::string_view key) {
  WireValues values = MultiGet({key});
  if (!values[0].ok()) {
    return values[0].status();
  }
  return std::string(*values[0]);
}

Status WireKvClient::Delete(std::string_view key) {
  return MultiDelete({key})[0];
}

std::vector<Status> WireKvClient::MultiPut(
    const std::vector<std::pair<std::string_view, std::string_view>>& pairs) {
  std::vector<std::string_view> keys;
  keys.reserve(pairs.size());
  for (const auto& [k, v] : pairs) {
    keys.push_back(k);
  }
  std::vector<Status> statuses;
  Run(WireOp::kMultiPut, keys, &pairs, &statuses, nullptr);
  return statuses;
}

WireValues WireKvClient::MultiGet(const std::vector<std::string_view>& keys) {
  std::vector<Status> statuses;
  WireValues out;
  Run(WireOp::kMultiGet, keys, nullptr, &statuses, &out);
  return out;
}

std::vector<Status> WireKvClient::MultiDelete(
    const std::vector<std::string_view>& keys) {
  std::vector<Status> statuses;
  Run(WireOp::kMultiDelete, keys, nullptr, &statuses, nullptr);
  return statuses;
}

Status WireKvClient::Ping(size_t endpoint_index) {
  if (endpoint_index >= map_.endpoints.size()) {
    return InvalidArgument("no such endpoint");
  }
  const WireEndpoint& ep = map_.endpoints[endpoint_index];
  auto conn = pool_.Get(ep.host, ep.port, ep.server_id);
  JIFFY_RETURN_IF_ERROR(conn.status());
  const uint64_t tag = (*conn)->BeginTag();
  std::string frame;
  EncodePingRequest(tag, &frame);
  rpcs_.fetch_add(1, std::memory_order_relaxed);
  WireReply reply = (*conn)->Call(std::move(frame), tag);
  if (!reply.transport.ok()) {
    return reply.transport;
  }
  return CodeStatus(reply.overall, "ping");
}

WireReply WireKvClient::ExchangeGroup(
    WireOp op, const Group& group, const std::vector<std::string_view>& keys,
    const std::vector<std::pair<std::string_view, std::string_view>>* pairs) {
  const WireRange& range = map_.ranges[group.range];
  const WireEndpoint& ep = map_.endpoints[range.endpoint];

  std::vector<std::string_view> group_keys;
  std::vector<std::pair<std::string_view, std::string_view>> group_pairs;
  if (op == WireOp::kMultiPut) {
    group_pairs.reserve(group.items.size());
    for (size_t i : group.items) {
      group_pairs.push_back((*pairs)[i]);
    }
  } else {
    group_keys.reserve(group.items.size());
    for (size_t i : group.items) {
      group_keys.push_back(keys[i]);
    }
  }

  Retrier retrier(options_.retry, clock_, &retry_rng_, &retry_budget_);
  for (;;) {
    auto conn = pool_.Get(ep.host, ep.port, ep.server_id);
    if (!conn.ok()) {
      WireReply dead;
      dead.transport = conn.status();
      if (retrier.ShouldRetry(dead.transport)) {
        retries_.fetch_add(1, std::memory_order_relaxed);
        retrier.BackoffAlways();
        continue;
      }
      return dead;
    }
    const uint64_t tag = (*conn)->BeginTag();
    std::string frame;
    if (op == WireOp::kMultiPut) {
      EncodeMultiPutRequest(tag, range.block, group_pairs, &frame);
    } else {
      EncodeKeysRequest(op, tag, range.block, group_keys, &frame);
    }
    rpcs_.fetch_add(1, std::memory_order_relaxed);
    WireReply reply = (*conn)->Call(std::move(frame), tag);
    if (reply.transport.ok()) {
      Retrier::RecordSuccess(&retry_budget_);
      return reply;
    }
    if (!(*conn)->alive()) {
      pool_.Evict(ep.host, ep.port);  // Next attempt re-dials.
    }
    if (!retrier.ShouldRetry(reply.transport)) {
      return reply;
    }
    retries_.fetch_add(1, std::memory_order_relaxed);
    retrier.BackoffAlways();
  }
}

void WireKvClient::Run(
    WireOp op, const std::vector<std::string_view>& keys,
    const std::vector<std::pair<std::string_view, std::string_view>>* pairs,
    std::vector<Status>* statuses, WireValues* payload) {
  const size_t n = keys.size();
  statuses->assign(n, Unavailable("wire op not attempted"));
  if (payload != nullptr) {
    payload->values.assign(n, NotFound(""));
  }
  if (n == 0) {
    return;
  }

  std::vector<uint32_t> slots(n);
  for (size_t i = 0; i < n; ++i) {
    slots[i] = KvSlotOf(keys[i], map_.total_slots);
  }

  std::vector<size_t> pending(n);
  for (size_t i = 0; i < n; ++i) {
    pending[i] = i;
  }

  for (int round = 0; round < kMaxStaleRounds && !pending.empty(); ++round) {
    // --- Route ------------------------------------------------------------
    std::vector<Group> groups;
    std::vector<size_t> stale;
    bool need_refresh = false;
    {
      std::vector<size_t> range_to_group(map_.ranges.size(), kNoRoute);
      for (size_t i : pending) {
        const size_t r = map_.Route(slots[i]);
        if (r == kNoRoute) {
          need_refresh = true;
          stale.push_back(i);
          continue;
        }
        if (range_to_group[r] == kNoRoute) {
          range_to_group[r] = groups.size();
          groups.push_back(Group{r, {}});
        }
        groups[range_to_group[r]].items.push_back(i);
      }
    }

    // --- First attempt: every group in flight concurrently ----------------
    // Encode + Submit without waiting; completions land out of order and
    // are matched by tag inside each connection.
    std::vector<WireReply> replies(groups.size());
    std::vector<bool> submitted(groups.size(), false);
    {
      std::mutex done_mu;
      std::condition_variable done_cv;
      size_t remaining = 0;
      for (size_t g = 0; g < groups.size(); ++g) {
        const WireRange& range = map_.ranges[groups[g].range];
        const WireEndpoint& ep = map_.endpoints[range.endpoint];
        auto conn = pool_.Get(ep.host, ep.port, ep.server_id);
        if (!conn.ok()) {
          replies[g].transport = conn.status();
          continue;
        }
        const uint64_t tag = (*conn)->BeginTag();
        std::string frame;
        if (op == WireOp::kMultiPut) {
          std::vector<std::pair<std::string_view, std::string_view>> ops;
          ops.reserve(groups[g].items.size());
          for (size_t i : groups[g].items) {
            ops.push_back((*pairs)[i]);
          }
          EncodeMultiPutRequest(tag, range.block, ops, &frame);
        } else {
          std::vector<std::string_view> ops;
          ops.reserve(groups[g].items.size());
          for (size_t i : groups[g].items) {
            ops.push_back(keys[i]);
          }
          EncodeKeysRequest(op, tag, range.block, ops, &frame);
        }
        rpcs_.fetch_add(1, std::memory_order_relaxed);
        submitted[g] = true;
        {
          std::lock_guard<std::mutex> lock(done_mu);
          ++remaining;
        }
        (*conn)->Submit(std::move(frame), tag,
                        [&replies, &done_mu, &done_cv, &remaining,
                         g](WireReply r) {
                          std::lock_guard<std::mutex> lock(done_mu);
                          replies[g] = std::move(r);
                          --remaining;
                          done_cv.notify_all();
                        });
      }
      std::unique_lock<std::mutex> lock(done_mu);
      done_cv.wait(lock, [&remaining] { return remaining == 0; });
    }

    // --- Retry loop for groups whose first flight failed -------------------
    for (size_t g = 0; g < groups.size(); ++g) {
      if (replies[g].transport.ok()) {
        if (submitted[g]) {
          Retrier::RecordSuccess(&retry_budget_);
        }
        continue;
      }
      if (RetryPolicy::IsRetryable(replies[g].transport.code())) {
        const WireRange& range = map_.ranges[groups[g].range];
        const WireEndpoint& ep = map_.endpoints[range.endpoint];
        pool_.Evict(ep.host, ep.port);
        retries_.fetch_add(1, std::memory_order_relaxed);
        replies[g] = ExchangeGroup(op, groups[g], keys, pairs);
      }
    }

    // --- Merge per-item outcomes -------------------------------------------
    for (size_t g = 0; g < groups.size(); ++g) {
      const Group& group = groups[g];
      WireReply& reply = replies[g];
      if (!reply.transport.ok()) {
        for (size_t i : group.items) {
          (*statuses)[i] = reply.transport;
          if (payload != nullptr) {
            (*payload)[i] = reply.transport;
          }
        }
        continue;
      }
      if (reply.overall != StatusCode::kOk ||
          reply.codes.size() != group.items.size()) {
        // kFailedPrecondition = the routed block's content is gone — a
        // split/merge landed after our snapshot (the in-process client's
        // "content vanished" signal). Stale, not fatal: refresh + re-route.
        if (reply.overall == StatusCode::kFailedPrecondition ||
            reply.overall == StatusCode::kStaleMetadata) {
          need_refresh = true;
          for (size_t i : group.items) {
            stale.push_back(i);
          }
          continue;
        }
        const Status st =
            reply.overall != StatusCode::kOk
                ? CodeStatus(reply.overall, "wire group failed")
                : Internal("wire response item count mismatch");
        for (size_t i : group.items) {
          (*statuses)[i] = st;
          if (payload != nullptr) {
            (*payload)[i] = st;
          }
        }
        continue;
      }
      // Values view reply.buf; record offsets before the buffer moves into
      // the caller's WireValues (SSO moves relocate bytes).
      std::vector<std::pair<size_t, size_t>> spans;
      if (payload != nullptr) {
        spans.reserve(group.items.size());
        for (size_t j = 0; j < group.items.size(); ++j) {
          const std::string_view v = reply.values[j];
          spans.emplace_back(
              v.empty() ? 0
                        : static_cast<size_t>(v.data() - reply.buf.data()),
              v.size());
        }
        payload->bufs.push_back(std::move(reply.buf));
      }
      const std::string& buf =
          payload != nullptr ? payload->bufs.back() : reply.buf;
      for (size_t j = 0; j < group.items.size(); ++j) {
        const size_t i = group.items[j];
        const StatusCode code = reply.codes[j];
        if (code == StatusCode::kStaleMetadata) {
          need_refresh = true;
          stale.push_back(i);
          continue;
        }
        (*statuses)[i] = CodeStatus(code, "wire item");
        if (payload != nullptr) {
          if (code == StatusCode::kOk) {
            (*payload)[i] = std::string_view(buf.data() + spans[j].first,
                                             spans[j].second);
          } else {
            (*payload)[i] = (*statuses)[i];
          }
        }
      }
    }

    pending = std::move(stale);
    if (!pending.empty()) {
      if (!need_refresh || !options_.map_refresher) {
        break;
      }
      Result<WireMap> refreshed = options_.map_refresher();
      if (!refreshed.ok()) {
        for (size_t i : pending) {
          (*statuses)[i] = refreshed.status();
          if (payload != nullptr) {
            (*payload)[i] = refreshed.status();
          }
        }
        return;
      }
      map_ = std::move(*refreshed);
    }
  }
  for (size_t i : pending) {
    (*statuses)[i] = StaleMetadata("wire route stale after refresh");
    if (payload != nullptr) {
      (*payload)[i] = (*statuses)[i];
    }
  }
}

}  // namespace jiffy
