// KV client speaking the binary wire protocol (DESIGN.md §12).
//
// WireKvClient is the socket-native sibling of KvClient: keys hash to
// slots, a WireMap routes slot ranges to (endpoint, block), operations for
// the same block coalesce into one frame, and every group's frame is
// submitted ASYNCHRONOUSLY on the pooled per-endpoint connection — groups
// for different blocks overlap on the wire, completions match back by tag.
// PR 5's retry layer runs unchanged on top: transport-level kTimeout /
// kUnavailable verdicts (real connection failures or FaultPlan-injected
// ones) are retried per group with exponential backoff on the real clock,
// and per-item kStaleMetadata answers trigger a map refresh + re-route of
// only the displaced items when a refresher is installed.
//
// Repartitioning over the wire is out of scope for this layer: the WireMap
// is a routing snapshot, refreshed as a whole; wire clients never split or
// merge blocks themselves (DESIGN.md §12).

#ifndef SRC_WIRE_WIRE_KV_CLIENT_H_
#define SRC_WIRE_WIRE_KV_CLIENT_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/client/retry.h"
#include "src/common/clock.h"
#include "src/common/random.h"
#include "src/common/status.h"
#include "src/net/frame.h"
#include "src/net/network.h"
#include "src/net/tcp_client.h"

namespace jiffy {

// One wire-reachable server process.
struct WireEndpoint {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  // Identity for FaultPlan outage windows (matches FaultPlan::Outage's
  // endpoint field, like the modeled transport's server ids).
  uint32_t server_id = 0;
};

// One contiguous slot range hosted by one block on one endpoint.
struct WireRange {
  uint32_t slot_lo = 0;
  uint32_t slot_hi = 0;  // exclusive
  uint64_t block = 0;    // BlockId::Packed()
  size_t endpoint = 0;   // index into WireMap::endpoints
};

// Routing snapshot: the wire analogue of a cached PartitionMap.
struct WireMap {
  uint32_t total_slots = 1024;
  std::vector<WireEndpoint> endpoints;
  std::vector<WireRange> ranges;

  // Index into `ranges` owning `slot`; SIZE_MAX when unrouted (stale map).
  size_t Route(uint32_t slot) const;

  // Evenly partitions the slot space across `endpoints`, one block per
  // endpoint — the standalone jiffy_server topology.
  static WireMap Even(std::vector<WireEndpoint> endpoints,
                      uint32_t total_slots,
                      const std::vector<uint64_t>& blocks);
};

class WireKvClient {
 public:
  struct Options {
    RetryPolicy retry;
    size_t max_in_flight = 64;  // Per pooled connection.
    // Adaptive send coalescing on the pooled connections (tcp_client.h):
    // once ≥ `coalesce_min_inflight` RPCs are outstanding on a connection,
    // frames batch up to `coalesce_window_us` and leave in one write; an
    // idle pipe always flushes immediately. 0 = off (every frame is its
    // own write, the PR-8 behavior).
    size_t coalesce_min_inflight = 16;
    uint64_t coalesce_window_us = 40;
    // SO_SNDBUF / SO_RCVBUF for dialed connections; 0 = kernel default.
    int sndbuf = 0;
    int rcvbuf = 0;
    Clock* clock = nullptr;     // Default RealClock.
    // Client-frame-layer fault injection (wire parity with the modeled
    // transport's FaultPlan; see tcp_client.h).
    FaultPlan faults;
    bool faults_on = false;
    // Re-fetches the routing snapshot after kStaleMetadata answers.
    // Unset = stale items fail with the server's verdict.
    std::function<Result<WireMap>()> map_refresher;
  };

  explicit WireKvClient(WireMap map)
      : WireKvClient(std::move(map), Options()) {}
  WireKvClient(WireMap map, Options options);

  // Single ops travel as a batch of one.
  Status Put(std::string_view key, std::string_view value);
  Result<std::string> Get(std::string_view key);
  Status Delete(std::string_view key);

  // Batched ops, aligned index-for-index with the input. Groups for
  // distinct blocks are in flight concurrently on the pooled connections.
  std::vector<Status> MultiPut(
      const std::vector<std::pair<std::string_view, std::string_view>>& pairs);
  WireValues MultiGet(const std::vector<std::string_view>& keys);
  std::vector<Status> MultiDelete(const std::vector<std::string_view>& keys);

  Status Ping(size_t endpoint_index);

  const WireMap& map() const { return map_; }
  TcpConnectionPool* pool() { return &pool_; }

  // Wire exchanges sent (frames, not items) and group-level retries.
  uint64_t rpcs_sent() const { return rpcs_.load(); }
  uint64_t retries() const { return retries_.load(); }

 private:
  struct Group;  // One per-block frame's worth of items.

  // Builds groups, submits every group's frame concurrently, waits, retries
  // retryable transport failures, and merges per-item codes. `payload` is
  // non-null for MultiGet — receives each item's value view anchored in
  // `bufs`.
  void Run(WireOp op,
           const std::vector<std::string_view>& keys,
           const std::vector<std::pair<std::string_view, std::string_view>>*
               pairs,
           std::vector<Status>* statuses, WireValues* payload);

  // One group's full exchange: encode → submit → wait → retry loop.
  // Returns the final reply (transport status set on exhaustion).
  WireReply ExchangeGroup(WireOp op, const Group& group,
                          const std::vector<std::string_view>& keys,
                          const std::vector<std::pair<std::string_view,
                                                      std::string_view>>*
                              pairs);

  WireMap map_;
  Options options_;
  Clock* clock_;
  TcpConnectionPool pool_;
  AtomicRng retry_rng_{0x5157495245ull};  // "WIRE"
  std::atomic<int> retry_budget_{Retrier::kBudgetMax};
  std::atomic<uint64_t> rpcs_{0};
  std::atomic<uint64_t> retries_{0};
};

}  // namespace jiffy

#endif  // SRC_WIRE_WIRE_KV_CLIENT_H_
