#include "src/workload/excamera.h"

namespace jiffy {

std::vector<ExCameraTask> MakeExCameraTasks(const ExCameraParams& params,
                                            uint64_t seed) {
  Rng rng(seed);
  std::vector<ExCameraTask> tasks;
  tasks.reserve(params.num_tasks);
  for (int i = 0; i < params.num_tasks; ++i) {
    ExCameraTask task;
    task.id = i;
    const int64_t jitter =
        rng.NextInRange(-params.encode_jitter, params.encode_jitter);
    task.encode_time =
        std::max<DurationNs>(10 * kMillisecond, params.mean_encode_time + jitter);
    task.state_bytes = params.state_bytes;
    tasks.push_back(task);
  }
  return tasks;
}

}  // namespace jiffy
