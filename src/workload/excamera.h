// Synthetic ExCamera-style video-encoding workload (§6.5, Fig 13(b)).
//
// ExCamera encodes a video with fine-grained parallel serverless tasks that
// exchange encoder state along a chain: task i finishes its chunk, ships its
// final state to task i+1, which needs it to start its own final pass. Task
// latency is therefore encode time + wait-for-upstream-state time; the wait
// component is what the rendezvous-vs-Jiffy-queue comparison measures.
//
// We model 4K raw-frame chunks (state messages of a few hundred KB) and
// per-task encode times drawn around a configurable mean, as in the paper's
// Sintel clips.

#ifndef SRC_WORKLOAD_EXCAMERA_H_
#define SRC_WORKLOAD_EXCAMERA_H_

#include <cstdint>
#include <vector>

#include "src/common/clock.h"
#include "src/common/random.h"

namespace jiffy {

struct ExCameraTask {
  int id = 0;
  // Time to encode this task's chunk before it can consume upstream state.
  DurationNs encode_time = 0;
  // Encoder state shipped to the next task.
  size_t state_bytes = 0;
};

struct ExCameraParams {
  int num_tasks = 14;  // Fig 13(b) shows task IDs 0..14.
  DurationNs mean_encode_time = 300 * kMillisecond;
  DurationNs encode_jitter = 100 * kMillisecond;
  size_t state_bytes = 256 << 10;
};

// Deterministic task list for (params, seed).
std::vector<ExCameraTask> MakeExCameraTasks(const ExCameraParams& params,
                                            uint64_t seed);

}  // namespace jiffy

#endif  // SRC_WORKLOAD_EXCAMERA_H_
