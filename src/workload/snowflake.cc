#include "src/workload/snowflake.h"

#include <algorithm>
#include <cmath>

namespace jiffy {

TimeNs JobSpec::EndTime() const {
  if (stages.empty()) {
    return submit_time;
  }
  const StageSpec& last = stages.back();
  return submit_time + last.start_offset + last.duration;
}

uint64_t JobSpec::LiveBytesAt(TimeNs t) const {
  // Stage i's output is live from the start of stage i until the end of
  // stage i+1 (its consumer); the last stage's output until job end.
  uint64_t live = 0;
  for (size_t i = 0; i < stages.size(); ++i) {
    const TimeNs start = submit_time + stages[i].start_offset;
    TimeNs until;
    if (i + 1 < stages.size()) {
      until = submit_time + stages[i + 1].start_offset + stages[i + 1].duration;
    } else {
      until = EndTime();
    }
    if (t >= start && t < until) {
      live += stages[i].bytes;
    }
  }
  return live;
}

uint64_t JobSpec::PeakBytes() const {
  // Evaluate at stage boundaries — live bytes only change there.
  uint64_t peak = 0;
  for (const StageSpec& s : stages) {
    peak = std::max(peak, LiveBytesAt(submit_time + s.start_offset));
    peak = std::max(peak,
                    LiveBytesAt(submit_time + s.start_offset + s.duration - 1));
  }
  return peak;
}

uint64_t JobSpec::TotalBytes() const {
  uint64_t total = 0;
  for (const StageSpec& s : stages) {
    total += s.bytes;
  }
  return total;
}

uint64_t TenantTrace::LiveBytesAt(TimeNs t) const {
  uint64_t live = 0;
  for (const JobSpec& job : jobs) {
    live += job.LiveBytesAt(t);
  }
  return live;
}

SnowflakeTraceGen::SnowflakeTraceGen(const SnowflakeParams& params,
                                     uint64_t seed)
    : params_(params), seed_(seed) {}

TenantTrace SnowflakeTraceGen::GenerateTenant(uint32_t i) {
  Rng rng(seed_ * 1000003 + i);
  TenantTrace trace;
  trace.tenant = "tenant" + std::to_string(i);
  // Tenants differ in intensity: scale the median stage size per tenant so
  // some tenants are orders of magnitude heavier, as in the real dataset.
  const double tenant_mu =
      params_.stage_bytes_mu + rng.NextGaussian() * 0.8;

  TimeNs t = static_cast<TimeNs>(rng.NextExponential(
      1.0 / static_cast<double>(params_.mean_job_interarrival)));
  uint32_t job_idx = 0;
  while (t < params_.window) {
    JobSpec job;
    job.id = trace.tenant + "-job" + std::to_string(job_idx++);
    job.submit_time = t;
    const uint32_t num_stages = static_cast<uint32_t>(rng.NextInRange(
        params_.min_stages, params_.max_stages));
    DurationNs offset = 0;
    for (uint32_t s = 0; s < num_stages; ++s) {
      StageSpec stage;
      stage.start_offset = offset;
      stage.duration = std::max<DurationNs>(
          kSecond, static_cast<DurationNs>(rng.NextExponential(
                       1.0 / static_cast<double>(params_.mean_stage_duration))));
      stage.bytes = static_cast<uint64_t>(std::clamp(
          rng.NextLogNormal(tenant_mu, params_.stage_bytes_sigma),
          static_cast<double>(params_.min_stage_bytes),
          static_cast<double>(params_.max_stage_bytes)));
      offset += stage.duration;
      job.stages.push_back(stage);
    }
    trace.jobs.push_back(std::move(job));
    t += static_cast<TimeNs>(rng.NextExponential(
        1.0 / static_cast<double>(params_.mean_job_interarrival)));
  }
  return trace;
}

std::vector<TenantTrace> SnowflakeTraceGen::GenerateAll() {
  std::vector<TenantTrace> traces;
  traces.reserve(params_.num_tenants);
  for (uint32_t i = 0; i < params_.num_tenants; ++i) {
    traces.push_back(GenerateTenant(i));
  }
  return traces;
}

std::vector<std::pair<TimeNs, uint64_t>> SnowflakeTraceGen::DemandSeries(
    const TenantTrace& trace, DurationNs step, DurationNs window) {
  std::vector<std::pair<TimeNs, uint64_t>> series;
  for (TimeNs t = 0; t <= window; t += step) {
    series.emplace_back(t, trace.LiveBytesAt(t));
  }
  return series;
}

uint64_t SnowflakeTraceGen::SeriesPeak(
    const std::vector<std::pair<TimeNs, uint64_t>>& series) {
  uint64_t peak = 0;
  for (const auto& [t, v] : series) {
    (void)t;
    peak = std::max(peak, v);
  }
  return peak;
}

double SnowflakeTraceGen::SeriesMean(
    const std::vector<std::pair<TimeNs, uint64_t>>& series) {
  if (series.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (const auto& [t, v] : series) {
    (void)t;
    sum += static_cast<double>(v);
  }
  return sum / static_cast<double>(series.size());
}

}  // namespace jiffy
