// Synthetic multi-tenant trace generator standing in for the Snowflake
// production dataset the paper analyzes (Fig 1) and replays (§6.1, §6.3,
// §6.6). See DESIGN.md §1 for the substitution argument.
//
// The generator is calibrated to the published statistics:
//   - per-stage intermediate data sizes are heavy-tailed (log-normal with
//     σ≈2), spanning ~5 orders of magnitude like TPC-DS stage outputs
//     (0.8 MB–66 GB in the paper, scaled down here);
//   - the ratio of a tenant's peak to average demand varies by 1–2 orders
//     of magnitude within minutes (Fig 1(a));
//   - provisioning every tenant at its peak yields <20 % average
//     utilization (Fig 1(b)).
// The Fig 1 bench verifies these properties against the generator.

#ifndef SRC_WORKLOAD_SNOWFLAKE_H_
#define SRC_WORKLOAD_SNOWFLAKE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/clock.h"
#include "src/common/random.h"

namespace jiffy {

// One stage of a job. Its intermediate data is produced over
// [start_offset, start_offset+duration) and consumed by the next stage, so
// it stays live until the next stage finishes (the last stage's output
// lives until job end).
struct StageSpec {
  DurationNs start_offset = 0;  // From job submit time.
  DurationNs duration = 0;
  uint64_t bytes = 0;
};

struct JobSpec {
  std::string id;
  TimeNs submit_time = 0;
  std::vector<StageSpec> stages;

  TimeNs EndTime() const;
  // Declared demand: the peak of concurrently live intermediate bytes —
  // what a job would have to tell Pocket at submission.
  uint64_t PeakBytes() const;
  uint64_t TotalBytes() const;

  // Live intermediate bytes at absolute time `t`.
  uint64_t LiveBytesAt(TimeNs t) const;
};

struct TenantTrace {
  std::string tenant;
  std::vector<JobSpec> jobs;

  uint64_t LiveBytesAt(TimeNs t) const;
};

struct SnowflakeParams {
  uint32_t num_tenants = 4;
  DurationNs window = 3600 * kSecond;          // Fig 1's one-hour window.
  DurationNs mean_job_interarrival = 90 * kSecond;
  DurationNs mean_stage_duration = 20 * kSecond;
  uint32_t min_stages = 1;
  uint32_t max_stages = 8;
  // Log-normal stage sizes: exp(mu) is the median stage size; sigma≈2 gives
  // the multi-order-of-magnitude spread the paper reports.
  double stage_bytes_mu = 14.5;   // e^14.5 ≈ 2 MB.
  double stage_bytes_sigma = 2.4;
  uint64_t min_stage_bytes = 16 << 10;
  uint64_t max_stage_bytes = 512u << 20;
};

class SnowflakeTraceGen {
 public:
  SnowflakeTraceGen(const SnowflakeParams& params, uint64_t seed);

  // Trace for tenant `i` (deterministic given (params, seed, i)).
  TenantTrace GenerateTenant(uint32_t i);
  std::vector<TenantTrace> GenerateAll();

  const SnowflakeParams& params() const { return params_; }

  // (t, live bytes) samples every `step` across [0, window].
  static std::vector<std::pair<TimeNs, uint64_t>> DemandSeries(
      const TenantTrace& trace, DurationNs step, DurationNs window);

  // Peak and mean of a demand series.
  static uint64_t SeriesPeak(
      const std::vector<std::pair<TimeNs, uint64_t>>& series);
  static double SeriesMean(
      const std::vector<std::pair<TimeNs, uint64_t>>& series);

 private:
  SnowflakeParams params_;
  uint64_t seed_;
};

}  // namespace jiffy

#endif  // SRC_WORKLOAD_SNOWFLAKE_H_
