#include "src/workload/text.h"

namespace jiffy {

SentenceGenerator::SentenceGenerator(uint32_t vocab_size, double zipf_theta,
                                     uint64_t seed)
    : vocab_size_(vocab_size),
      zipf_(vocab_size, zipf_theta, seed),
      rng_(seed ^ 0xabcdef) {}

std::string SentenceGenerator::Word(uint32_t i) const {
  // Pad short ranks so common words are short and rare words longer, like
  // natural text ("w0" vs "w000123").
  std::string word = "w" + std::to_string(i);
  if (i >= 1000) {
    word += "x";
  }
  return word;
}

std::string SentenceGenerator::Sentence(uint32_t min_words,
                                        uint32_t max_words) {
  const uint32_t n =
      static_cast<uint32_t>(rng_.NextInRange(min_words, max_words));
  std::string out;
  for (uint32_t i = 0; i < n; ++i) {
    if (i > 0) {
      out += ' ';
    }
    out += Word(static_cast<uint32_t>(zipf_.Next()));
  }
  return out;
}

std::vector<std::string> SentenceGenerator::Batch(uint32_t sentences) {
  std::vector<std::string> out;
  out.reserve(sentences);
  for (uint32_t i = 0; i < sentences; ++i) {
    out.push_back(Sentence());
  }
  return out;
}

std::vector<std::string> SplitWords(const std::string& text) {
  std::vector<std::string> words;
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find_first_of(" \n\t", start);
    if (end == std::string::npos) {
      end = text.size();
    }
    if (end > start) {
      words.push_back(text.substr(start, end - start));
    }
    start = end + 1;
  }
  return words;
}

}  // namespace jiffy
