// Synthetic text workload standing in for the Wikipedia sentence stream in
// the streaming word-count experiment (§6.5, Fig 13(a)). Vocabulary follows
// a Zipf distribution, matching natural-language word frequencies, so the
// partition→count pipeline sees realistic key skew.

#ifndef SRC_WORKLOAD_TEXT_H_
#define SRC_WORKLOAD_TEXT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/random.h"

namespace jiffy {

class SentenceGenerator {
 public:
  SentenceGenerator(uint32_t vocab_size, double zipf_theta, uint64_t seed);

  // The i-th vocabulary word ("w<i>" with deterministic length padding so
  // word sizes vary like real text).
  std::string Word(uint32_t i) const;

  // One sentence of `min_words`..`max_words` space-separated words.
  std::string Sentence(uint32_t min_words = 6, uint32_t max_words = 14);

  // A batch of sentences separated by '\n'.
  std::vector<std::string> Batch(uint32_t sentences);

  uint32_t vocab_size() const { return vocab_size_; }

 private:
  uint32_t vocab_size_;
  ZipfSampler zipf_;
  Rng rng_;
};

// Splits `text` on whitespace (the word-count map step).
std::vector<std::string> SplitWords(const std::string& text);

}  // namespace jiffy

#endif  // SRC_WORKLOAD_TEXT_H_
