// Unit tests for hierarchical address paths (§3.1).

#include <gtest/gtest.h>

#include "src/core/address.h"

namespace jiffy {
namespace {

TEST(AddressPathTest, ParsesSimplePath) {
  auto p = AddressPath::Parse("/job1/T1/T5");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->depth(), 3u);
  EXPECT_EQ(p->job(), "job1");
  EXPECT_EQ(p->leaf(), "T5");
  EXPECT_EQ(p->ToString(), "/job1/T1/T5");
}

TEST(AddressPathTest, LeadingSlashOptional) {
  auto p = AddressPath::Parse("job1/T1");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->ToString(), "/job1/T1");
}

TEST(AddressPathTest, TrailingSlashTolerated) {
  auto p = AddressPath::Parse("/job1/T1/");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->depth(), 2u);
}

TEST(AddressPathTest, RejectsEmpty) {
  EXPECT_FALSE(AddressPath::Parse("").ok());
  EXPECT_FALSE(AddressPath::Parse("/").ok());
}

TEST(AddressPathTest, RejectsEmptySegment) {
  EXPECT_FALSE(AddressPath::Parse("/job1//T1").ok());
}

TEST(AddressPathTest, RejectsBadCharacters) {
  EXPECT_FALSE(AddressPath::Parse("/job 1/T1").ok());
  EXPECT_FALSE(AddressPath::Parse("/job*/T1").ok());
}

TEST(AddressPathTest, AllowsDotsDashesUnderscores) {
  EXPECT_TRUE(AddressPath::Parse("/job-1/T_1.a").ok());
}

TEST(AddressPathTest, ParentAndChild) {
  auto p = AddressPath::Parse("/j/a/b");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->Parent().ToString(), "/j/a");
  EXPECT_EQ(p->Child("c").ToString(), "/j/a/b/c");
}

TEST(AddressPathTest, ParentOfSingleSegmentIsEmpty) {
  auto p = AddressPath::Parse("/j");
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(p->Parent().empty());
}

TEST(AddressPathTest, EqualityBySegments) {
  EXPECT_EQ(*AddressPath::Parse("/a/b"), *AddressPath::Parse("a/b/"));
}

TEST(PathSegmentTest, Validation) {
  EXPECT_TRUE(IsValidPathSegment("T1"));
  EXPECT_TRUE(IsValidPathSegment("map_0.out-1"));
  EXPECT_FALSE(IsValidPathSegment(""));
  EXPECT_FALSE(IsValidPathSegment("a/b"));
  EXPECT_FALSE(IsValidPathSegment("a b"));
}

}  // namespace
}  // namespace jiffy
