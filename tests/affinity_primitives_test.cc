// Unit and concurrency tests for the thread-per-core primitives behind
// DESIGN.md §13: the Block bias handshake (single-writer execution without
// mu(), revocable by any OpLock holder) and the bounded MPSC ring the wire
// loops forward requests through.
//
// Suite names contain "Concurrency" so the TSan CI job picks them up — the
// Dekker-style handshake and the ring's acquire/release choreography are
// exactly what TSan validates here, using deliberately NON-atomic shared
// state as the detector.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "src/block/block.h"
#include "src/block/block_id.h"
#include "src/net/mpsc_ring.h"

namespace jiffy {
namespace {

// --- Bias handshake basics ---------------------------------------------------

TEST(BlockBiasConcurrencyTest, GrantEnablesFastPathForOwnerOnly) {
  Block block(BlockId{0, 0}, 4096);
  constexpr uint64_t kOwner = 101;
  constexpr uint64_t kStranger = 202;

  // Unbiased: nobody gets the fast path, and tag 0 (kSharedBias) never does.
  EXPECT_FALSE(block.TryBeginBiasedOp(kOwner));
  EXPECT_FALSE(block.TryBeginBiasedOp(Block::kSharedBias));

  {
    Block::OpLock lock(block);
    block.GrantBias(kOwner);
  }
  EXPECT_EQ(block.bias(), kOwner);
  ASSERT_TRUE(block.TryBeginBiasedOp(kOwner));
  block.EndBiasedOp();
  EXPECT_FALSE(block.TryBeginBiasedOp(kStranger));
  EXPECT_EQ(block.biased_ops(), 1u);
}

TEST(BlockBiasConcurrencyTest, OpLockRevokesAnExistingBias) {
  Block block(BlockId{0, 1}, 4096);
  constexpr uint64_t kOwner = 7;
  {
    Block::OpLock lock(block);
    block.GrantBias(kOwner);
  }
  ASSERT_TRUE(block.TryBeginBiasedOp(kOwner));
  block.EndBiasedOp();

  // Any shared accessor strips the bias before touching content...
  { Block::OpLock lock(block); }
  EXPECT_EQ(block.bias(), Block::kSharedBias);
  EXPECT_FALSE(block.TryBeginBiasedOp(kOwner));
  EXPECT_EQ(block.bias_revokes(), 1u);

  // ...and an unbiased OpLock does not count a revoke.
  { Block::OpLock lock(block); }
  EXPECT_EQ(block.bias_revokes(), 1u);
}

// The mutual-exclusion proof: one owner thread hammers the biased fast path
// (re-granting through OpLock whenever revoked) while revoker threads take
// OpLocks, ALL incrementing one non-atomic counter. Any overlap between a
// biased operator and a lock holder is a lost update (count mismatch) and a
// TSan data race.
TEST(BlockBiasConcurrencyTest, BiasedOwnerExcludesOpLockHolders) {
  Block block(BlockId{0, 2}, 4096);
  constexpr uint64_t kOwnerTag = 42;
  constexpr int kOwnerOps = 20000;
  constexpr int kRevokers = 3;
  constexpr int kRevokerOps = 2000;
  uint64_t counter = 0;  // Deliberately non-atomic.

  std::thread owner([&] {
    for (int i = 0; i < kOwnerOps; ++i) {
      if (block.TryBeginBiasedOp(kOwnerTag)) {
        ++counter;
        block.EndBiasedOp();
      } else {
        Block::OpLock lock(block);
        ++counter;
        block.GrantBias(kOwnerTag);
      }
    }
  });
  std::vector<std::thread> revokers;
  for (int r = 0; r < kRevokers; ++r) {
    revokers.emplace_back([&] {
      for (int i = 0; i < kRevokerOps; ++i) {
        Block::OpLock lock(block);
        ++counter;
      }
    });
  }
  owner.join();
  for (std::thread& t : revokers) {
    t.join();
  }
  EXPECT_EQ(counter, static_cast<uint64_t>(kOwnerOps) +
                         static_cast<uint64_t>(kRevokers) * kRevokerOps);
  // The interleaving must have actually exercised both modes.
  EXPECT_GT(block.biased_ops(), 0u);
  EXPECT_GT(block.bias_revokes(), 0u);
}

// --- MPSC forwarding ring ----------------------------------------------------

TEST(MpscRingConcurrencyTest, PushPopRoundTripsAndBoundsCapacity) {
  MpscRing<int> ring(4);  // Rounds to 4 slots.
  bool was_empty = false;
  EXPECT_TRUE(ring.Empty());
  for (int i = 0; i < 4; ++i) {
    int v = i;
    ASSERT_TRUE(ring.Push(std::move(v), &was_empty));
    EXPECT_EQ(was_empty, i == 0);
  }
  int overflow = 99;
  EXPECT_FALSE(ring.Push(std::move(overflow)));  // Full: bounded, not lossy.
  for (int i = 0; i < 4; ++i) {
    int got = -1;
    ASSERT_TRUE(ring.Pop(&got));
    EXPECT_EQ(got, i);  // FIFO.
  }
  int none = -1;
  EXPECT_FALSE(ring.Pop(&none));
  EXPECT_TRUE(ring.Empty());
}

TEST(MpscRingConcurrencyTest, ManyProducersOneConsumerLosesNothing) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 20000;
  MpscRing<uint64_t> ring(256);
  std::atomic<bool> start{false};

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      while (!start.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      for (int i = 0; i < kPerProducer; ++i) {
        uint64_t item = (static_cast<uint64_t>(p) << 32) |
                        static_cast<uint64_t>(i);
        while (!ring.Push(std::move(item))) {
          std::this_thread::yield();  // Full: wait for the consumer.
        }
      }
    });
  }

  // Single consumer, exactly the wire-loop drain pattern.
  std::vector<uint64_t> next(kProducers, 0);
  uint64_t received = 0;
  uint64_t misordered = 0;
  start.store(true, std::memory_order_release);
  while (received < static_cast<uint64_t>(kProducers) * kPerProducer) {
    uint64_t item = 0;
    if (!ring.Pop(&item)) {
      std::this_thread::yield();
      continue;
    }
    const size_t p = static_cast<size_t>(item >> 32);
    const uint64_t seq = item & 0xffffffffu;
    // Per-producer FIFO: each producer's items arrive in push order.
    if (seq != next[p]) {
      ++misordered;
    }
    next[p] = seq + 1;
    ++received;
  }
  for (std::thread& t : producers) {
    t.join();
  }
  EXPECT_EQ(misordered, 0u);
  EXPECT_EQ(received, static_cast<uint64_t>(kProducers) * kPerProducer);
  EXPECT_TRUE(ring.Empty());  // Nothing duplicated or stranded.
}

// Move-only payloads (the rings carry request bodies and responses) must
// move through the ring without copies.
TEST(MpscRingConcurrencyTest, CarriesMoveOnlyPayloads) {
  MpscRing<std::unique_ptr<int>> ring(8);
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(ring.Push(std::make_unique<int>(i)));
  }
  for (int i = 0; i < 8; ++i) {
    std::unique_ptr<int> got;
    ASSERT_TRUE(ring.Pop(&got));
    ASSERT_NE(got, nullptr);
    EXPECT_EQ(*got, i);
  }
}

}  // namespace
}  // namespace jiffy
