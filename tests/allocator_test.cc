// Unit tests for the controller's free-block list (§4.2.1).

#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "src/core/allocator.h"

namespace jiffy {
namespace {

TEST(AllocatorTest, AllocatesUniqueBlocks) {
  BlockAllocator alloc(2, 4);
  std::set<uint64_t> seen;
  for (int i = 0; i < 8; ++i) {
    auto id = alloc.Allocate("job/a");
    ASSERT_TRUE(id.ok());
    EXPECT_TRUE(seen.insert(id->Packed()).second);
  }
  EXPECT_EQ(alloc.free_count(), 0u);
  EXPECT_EQ(alloc.Allocate("job/a").status().code(), StatusCode::kOutOfMemory);
}

TEST(AllocatorTest, FreeReturnsCapacity) {
  BlockAllocator alloc(1, 2);
  auto a = alloc.Allocate("o");
  auto b = alloc.Allocate("o");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(alloc.Free(*a).ok());
  EXPECT_EQ(alloc.free_count(), 1u);
  auto c = alloc.Allocate("o");
  EXPECT_TRUE(c.ok());
}

TEST(AllocatorTest, DoubleFreeRejected) {
  BlockAllocator alloc(1, 2);
  auto a = alloc.Allocate("o");
  ASSERT_TRUE(a.ok());
  EXPECT_TRUE(alloc.Free(*a).ok());
  EXPECT_EQ(alloc.Free(*a).code(), StatusCode::kInvalidArgument);
}

TEST(AllocatorTest, LeastLoadedPlacement) {
  BlockAllocator alloc(3, 10);
  // First three allocations land on distinct servers.
  std::set<uint32_t> servers;
  for (int i = 0; i < 3; ++i) {
    auto id = alloc.Allocate("o");
    ASSERT_TRUE(id.ok());
    servers.insert(id->server_id);
  }
  EXPECT_EQ(servers.size(), 3u);
}

TEST(AllocatorTest, AllocateNIsAtomic) {
  BlockAllocator alloc(1, 4);
  ASSERT_TRUE(alloc.Allocate("o").ok());
  // Asking for more than free leaves state untouched.
  EXPECT_EQ(alloc.AllocateN("o", 4).status().code(), StatusCode::kOutOfMemory);
  EXPECT_EQ(alloc.free_count(), 3u);
  auto got = alloc.AllocateN("o", 3);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->size(), 3u);
  EXPECT_EQ(alloc.free_count(), 0u);
}

TEST(AllocatorTest, OwnerAccounting) {
  BlockAllocator alloc(2, 4);
  auto a = alloc.Allocate("j1/x");
  auto b = alloc.Allocate("j1/x");
  auto c = alloc.Allocate("j2/y");
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  EXPECT_EQ(alloc.OwnerCount("j1/x"), 2u);
  EXPECT_EQ(alloc.OwnerCount("j2/y"), 1u);
  EXPECT_EQ(alloc.OwnerCount("nobody"), 0u);
  ASSERT_TRUE(alloc.Free(*a).ok());
  EXPECT_EQ(alloc.OwnerCount("j1/x"), 1u);
}

TEST(AllocatorTest, PeakTracksHighWaterMark) {
  BlockAllocator alloc(1, 4);
  auto a = alloc.Allocate("o");
  auto b = alloc.Allocate("o");
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE(alloc.Free(*a).ok());
  ASSERT_TRUE(alloc.Free(*b).ok());
  EXPECT_EQ(alloc.peak_allocated(), 2u);
  EXPECT_EQ(alloc.allocated_count(), 0u);
}

TEST(AllocatorTest, ConcurrentAllocateFreeIsConsistent) {
  BlockAllocator alloc(4, 64);
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&alloc, t] {
      const std::string owner = "job" + std::to_string(t);
      for (int i = 0; i < 500; ++i) {
        auto id = alloc.Allocate(owner);
        if (id.ok()) {
          ASSERT_TRUE(alloc.Free(*id).ok());
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(alloc.free_count(), 256u);
  EXPECT_EQ(alloc.allocated_count(), 0u);
}

}  // namespace
}  // namespace jiffy
