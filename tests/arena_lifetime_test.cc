// Arena lifetime tests (DESIGN.md §11): views handed out by block contents
// must survive compaction, chunked migration, and slab recycling for as long
// as a pin is held — and freed slabs must be poisoned (ASan builds) the
// moment they recycle.
//
// Suite name contains "Concurrency" so the TSan CI job picks it up.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "src/block/arena.h"
#include "src/client/jiffy_client.h"
#include "src/client/kv_client.h"
#include "src/common/random.h"
#include "src/ds/kv_content.h"

namespace jiffy {
namespace {

// Pinned views must survive the arena compactions that overwrite churn
// triggers, byte-identical to the moment they were read: stored bytes are
// never mutated in place, and the pin keeps retired slabs from recycling.
TEST(ArenaLifetimeConcurrencyTest, PinnedViewsSurviveCompaction) {
  KvShard shard(1 << 20, 0, 1024, 1024);
  const std::string big(4096, 'v');
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(shard.Put("key" + std::to_string(i), big + "r0").ok());
  }
  // Read one value and pin the arena, as a client response would under the
  // block mutex.
  Result<std::string_view> v = shard.Get("key0");
  ASSERT_TRUE(v.ok());
  ArenaPin pin(shard.arena());
  // Overwrite churn: >64 KiB stored and >50% garbage forces compactions
  // inside Put (KvShard::MaybeCompact).
  for (int round = 1; round <= 8; ++round) {
    for (int i = 0; i < 16; ++i) {
      ASSERT_TRUE(
          shard.Put("key" + std::to_string(i), big + "r" + std::to_string(round))
              .ok());
    }
  }
  // Compaction ran, but the pin held the retired slabs back from the pool.
  EXPECT_GT(shard.arena()->retired_chunks(), 0u);
  EXPECT_EQ(*v, big + "r0");
  EXPECT_FALSE(SlabArena::IsPoisoned(v->data()));
  const void* stale = v->data();
  pin.Release();  // Last pin: retired slabs drain to the poisoned pool.
  shard.arena()->TryRelease();
  EXPECT_EQ(shard.arena()->retired_chunks(), 0u);
  EXPECT_EQ(SlabArena::IsPoisoned(stale), SlabArena::PoisonActive());
  // Live data is unaffected by the recycle.
  Result<std::string_view> fresh = shard.Get("key0");
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(*fresh, big + "r8");
}

// A chunked migration's FinishMigration drops the moved range and compacts;
// with no pins outstanding the dropped range's slabs recycle into later
// writes instead of growing the footprint.
TEST(ArenaLifetimeConcurrencyTest, MigrationRecyclesSlabsIntoLaterWrites) {
  KvShard shard(1 << 20, 0, 1024, 1024);
  const std::string value(1024, 'm');
  std::vector<std::string> upper_keys;
  for (int i = 0; i < 400; ++i) {
    const std::string key = "mig" + std::to_string(i);
    ASSERT_TRUE(shard.Put(key, value).ok());
    if (KvSlotOf(key, 1024) >= 384) {
      upper_keys.push_back(key);
    }
  }
  ASSERT_GT(upper_keys.size(), 50u);
  // Chunked move of the upper ~60% of the slot space, as the background
  // repartitioner drives it: dropping it leaves the arena mostly garbage, so
  // FinishMigration compacts and the freed slabs land in the recycle pool.
  ASSERT_TRUE(shard.BeginMigration(384).ok());
  size_t cursor = 0;
  std::vector<std::pair<std::string, std::string>> moved;
  while (!shard.SplitOffChunk(&cursor, 4096, &moved)) {
  }
  EXPECT_GE(moved.size(), upper_keys.size());
  const uint64_t recycled_before = shard.arena()->recycled_chunks();
  shard.FinishMigration();
  const size_t footprint = shard.arena()->footprint_bytes();
  // Fill the surviving range with fresh keys: new slabs come from the
  // recycled pool, not from new allocations.
  int filled = 0;
  for (int i = 0; filled < 300; ++i) {
    const std::string key = "fill" + std::to_string(i);
    if (KvSlotOf(key, 1024) < 384) {
      ASSERT_TRUE(shard.Put(key, value).ok());
      ++filled;
    }
  }
  EXPECT_GT(shard.arena()->recycled_chunks(), recycled_before);
  // Copy-compaction peaks at two copies of the live set (the retired slabs
  // stay readable while survivors re-store), but recycling keeps the
  // steady-state footprint bounded instead of growing with every round.
  EXPECT_LE(shard.arena()->footprint_bytes(), 2 * footprint);
  for (const std::string& key : upper_keys) {
    EXPECT_FALSE(shard.Get(key).ok()) << key;
  }
}

// End-to-end: readers hold MultiGetPinned responses (zero-copy views into
// block arenas) while splits, merges, and compactions run underneath. The
// pins must keep every referenced slab alive until the reader is done —
// under ASan a violated pin reads poisoned bytes, under TSan an unlocked
// recycle races.
TEST(ArenaLifetimeConcurrencyTest, PinnedReadsSurviveSplitMergeChurn) {
  JiffyCluster::Options opts;
  opts.config.num_memory_servers = 4;
  opts.config.blocks_per_server = 256;
  opts.config.block_size_bytes = 4096;
  opts.config.repartition_chunk_bytes = 512;
  opts.config.lease_duration = 3600 * kSecond;
  auto cluster = std::make_unique<JiffyCluster>(opts);
  JiffyClient client(cluster.get());
  ASSERT_TRUE(client.RegisterJob("job").ok());
  ASSERT_TRUE(client.CreateAddrPrefix("/job/kv", {}).ok());
  constexpr int kStable = 16;
  std::vector<std::string> stable_keys;
  {
    auto kv = client.OpenKv("/job/kv");
    ASSERT_TRUE(kv.ok());
    for (int i = 0; i < kStable; ++i) {
      stable_keys.push_back("stable" + std::to_string(i));
      ASSERT_TRUE((*kv)->Put(stable_keys.back(), "constant-value").ok());
    }
  }
  std::atomic<bool> stop{false};
  std::thread churner([&] {
    auto kv = client.OpenKv("/job/kv");
    ASSERT_TRUE(kv.ok());
    Rng rng(7);
    const TimeNs until = RealClock::Instance()->Now() + 100 * kMillisecond;
    for (int round = 0; RealClock::Instance()->Now() < until || round < 2;
         ++round) {
      for (int i = 0; i < 250; ++i) {
        ASSERT_TRUE((*kv)
                        ->Put("churn" + std::to_string(i),
                              std::string(80 + rng.NextBelow(40), 'c'))
                        .ok());
      }
      for (int i = 0; i < 250; ++i) {
        ASSERT_TRUE((*kv)->Delete("churn" + std::to_string(i)).ok());
      }
    }
  });
  std::vector<std::thread> readers;
  std::atomic<uint64_t> reads{0};
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      auto kv = client.OpenKv("/job/kv");
      ASSERT_TRUE(kv.ok());
      const std::vector<std::string_view> views(stable_keys.begin(),
                                                stable_keys.end());
      while (!stop.load()) {
        KvClient::PinnedValues pinned = (*kv)->MultiGetPinned(views);
        ASSERT_EQ(pinned.values.size(), views.size());
        // Deliberately dwell with the pins held so migrations and
        // compactions get a chance to retire the slabs under us.
        for (int spin = 0; spin < 8; ++spin) {
          std::this_thread::yield();
        }
        for (size_t i = 0; i < pinned.values.size(); ++i) {
          ASSERT_TRUE(pinned.values[i].ok()) << stable_keys[i];
          ASSERT_EQ(*pinned.values[i], "constant-value") << stable_keys[i];
          EXPECT_FALSE(SlabArena::IsPoisoned(pinned.values[i]->data()));
        }
        reads.fetch_add(1);
      }
    });
  }
  churner.join();
  stop.store(true);
  for (auto& t : readers) {
    t.join();
  }
  ASSERT_NE(cluster->repartitioner(), nullptr);
  cluster->repartitioner()->WaitIdle();
  // Each read is a full 16-key pinned batch with retries, so under a loaded
  // CI machine only a handful complete inside the churn window — any nonzero
  // count means pinned views were validated against live migrations.
  EXPECT_GT(reads.load(), 0u);
  EXPECT_GT(cluster->repartitioner()->splits() +
                cluster->repartitioner()->merges(),
            0u);
}

}  // namespace
}  // namespace jiffy
