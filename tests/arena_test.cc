// Unit tests for the slab arena backing block content bytes (DESIGN.md §11):
// bump allocation, wholesale retire/release, pooled recycling, pin-gated
// reclamation, and the CopyMeter copy accounting.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/block/arena.h"

namespace jiffy {
namespace {

TEST(ArenaTest, StoreReturnsStableAlignedViews) {
  SlabArena arena;
  std::vector<std::string_view> views;
  for (int i = 0; i < 100; ++i) {
    views.push_back(arena.Store("payload-" + std::to_string(i)));
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(views[i], "payload-" + std::to_string(i));
    EXPECT_EQ(reinterpret_cast<uintptr_t>(views[i].data()) % 8, 0u) << i;
  }
}

TEST(ArenaTest, AccountingTracksStoredGarbageLive) {
  SlabArena arena;
  arena.Store(std::string(100, 'a'));
  arena.Store(std::string(50, 'b'));
  EXPECT_EQ(arena.stored_bytes(), 150u);
  arena.NoteGarbage(50);
  EXPECT_EQ(arena.garbage_bytes(), 50u);
  EXPECT_EQ(arena.live_bytes(), 100u);
}

TEST(ArenaTest, RetiredBytesStayReadableUntilRelease) {
  SlabArena arena;
  const std::string_view v = arena.Store("still-here-after-retire");
  arena.RetireActive();
  // The compactor reads retired slabs while re-storing live records, so
  // retiring must not recycle (or poison) them.
  EXPECT_EQ(v, "still-here-after-retire");
  EXPECT_EQ(arena.active_chunks(), 0u);
  EXPECT_EQ(arena.retired_chunks(), 1u);
  EXPECT_EQ(arena.pooled_chunks(), 0u);
  arena.TryRelease();
  EXPECT_EQ(arena.retired_chunks(), 0u);
  EXPECT_EQ(arena.pooled_chunks(), 1u);
}

TEST(ArenaTest, PinBlocksReleaseUntilLastUnpin) {
  auto arena = std::make_shared<SlabArena>();
  const std::string_view v = arena->Store("pinned-bytes");
  ArenaPin pin1(arena);
  ArenaPin pin2(arena);
  EXPECT_EQ(arena->pins(), 2);
  arena->RetireActive();
  arena->TryRelease();  // Blocked: two pins outstanding.
  EXPECT_EQ(arena->retired_chunks(), 1u);
  pin1.Release();
  arena->TryRelease();  // Still blocked by pin2.
  EXPECT_EQ(arena->retired_chunks(), 1u);
  EXPECT_EQ(v, "pinned-bytes");
  pin2.Release();  // Last Unpin releases without an explicit TryRelease.
  EXPECT_EQ(arena->retired_chunks(), 0u);
  EXPECT_EQ(arena->pooled_chunks(), 1u);
}

TEST(ArenaTest, RecyclesPooledChunksInsteadOfAllocating) {
  SlabArena arena(/*chunk_bytes=*/256);
  for (int i = 0; i < 8; ++i) {
    arena.Store(std::string(100, 'x'));
  }
  EXPECT_GE(arena.active_chunks(), 2u);
  arena.RetireActive();
  arena.TryRelease();
  const size_t footprint = arena.footprint_bytes();
  EXPECT_EQ(arena.recycled_chunks(), 0u);
  for (int i = 0; i < 8; ++i) {
    arena.Store(std::string(100, 'y'));
  }
  EXPECT_GE(arena.recycled_chunks(), 2u);
  EXPECT_EQ(arena.footprint_bytes(), footprint);
}

TEST(ArenaTest, OversizeAllocationGetsDedicatedChunk) {
  SlabArena arena(/*chunk_bytes=*/256);
  const std::string big(4096, 'B');
  const std::string_view v = arena.Store(big);
  EXPECT_EQ(v, big);
}

TEST(ArenaTest, PooledChunksArePoisonedExactlyUnderAsan) {
  SlabArena arena;
  const std::string_view v = arena.Store("bytes-that-get-recycled");
  const void* p = v.data();
  EXPECT_FALSE(SlabArena::IsPoisoned(p));
  arena.RetireActive();
  EXPECT_FALSE(SlabArena::IsPoisoned(p));  // Retired ≠ recycled: still readable.
  arena.TryRelease();
  // Once pooled, the bytes are poison under ASan so a dangling view faults
  // loudly; in plain builds the helper reports false for everything.
  EXPECT_EQ(SlabArena::IsPoisoned(p), SlabArena::PoisonActive());
}

TEST(ArenaTest, PinKeepsArenaAliveAfterOwnerDrops) {
  auto arena = std::make_shared<SlabArena>();
  const std::string_view v = arena->Store("outlives-the-content");
  ArenaPin pin(arena);
  arena.reset();  // Content teardown: the pin holds the last reference.
  EXPECT_EQ(v, "outlives-the-content");
  pin.Release();
}

TEST(ArenaTest, ArenaPinMoveTransfersOwnership) {
  auto arena = std::make_shared<SlabArena>();
  ArenaPin pin(arena);
  EXPECT_EQ(arena->pins(), 1);
  ArenaPin moved(std::move(pin));
  EXPECT_EQ(arena->pins(), 1);
  EXPECT_FALSE(static_cast<bool>(pin));
  EXPECT_TRUE(static_cast<bool>(moved));
  ArenaPin assigned;
  assigned = std::move(moved);
  EXPECT_EQ(arena->pins(), 1);
  assigned.Release();
  EXPECT_EQ(arena->pins(), 0);
}

TEST(ArenaTest, CopyMeterCountsStoredBytes) {
  SlabArena arena;
  const uint64_t before = CopyMeter::Total();
  arena.Store(std::string(1000, 'c'));
  arena.Store(std::string(24, 'd'));
  EXPECT_EQ(CopyMeter::Total() - before, 1024u);
}

}  // namespace
}  // namespace jiffy
