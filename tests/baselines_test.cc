// Tests for the comparison systems: remote service models (Fig 10), the
// allocation-policy baselines (Fig 9), and the rendezvous server (Fig 13(b)).

#include <gtest/gtest.h>

#include <thread>

#include "src/baselines/alloc_policy.h"
#include "src/baselines/remote_models.h"
#include "src/baselines/rendezvous.h"

namespace jiffy {
namespace {

// --- Remote models ----------------------------------------------------------

TEST(RemoteModelTest, PutGetRoundTrip) {
  RemoteKvModel ec(RemoteKvModel::ElastiCache(), Transport::Mode::kZero,
                   nullptr, 1);
  DurationNs put_lat = 0, get_lat = 0;
  ASSERT_TRUE(ec.Put("k", "value", &put_lat).ok());
  auto v = ec.Get("k", &get_lat);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, "value");
  EXPECT_GT(put_lat, 0);
  EXPECT_GT(get_lat, 0);
  ASSERT_TRUE(ec.Delete("k").ok());
  EXPECT_EQ(ec.Get("k").status().code(), StatusCode::kNotFound);
}

TEST(RemoteModelTest, DynamoRejectsLargeObjects) {
  RemoteKvModel dynamo(RemoteKvModel::DynamoDb(), Transport::Mode::kZero,
                       nullptr, 1);
  std::string big(256 << 10, 'x');
  EXPECT_EQ(dynamo.Put("k", big).code(), StatusCode::kInvalidArgument);
  std::string ok_obj(64 << 10, 'x');
  EXPECT_TRUE(dynamo.Put("k", ok_obj).ok());
}

TEST(RemoteModelTest, LatencyEnvelopeOrdering) {
  // Persistent stores must be orders of magnitude slower than the
  // in-memory ones for small objects (the Fig 10 gap).
  const Transport::Mode mode = Transport::Mode::kZero;
  RemoteKvModel s3(RemoteKvModel::S3(), mode, nullptr, 1);
  RemoteKvModel ec(RemoteKvModel::ElastiCache(), mode, nullptr, 2);
  DurationNs s3_lat = 0, ec_lat = 0;
  ASSERT_TRUE(s3.Put("k", "small", &s3_lat).ok());
  ASSERT_TRUE(ec.Put("k", "small", &ec_lat).ok());
  EXPECT_GT(s3_lat, 20 * ec_lat);
  EXPECT_LT(ec_lat, 1 * kMillisecond);
  EXPECT_GT(s3_lat, 10 * kMillisecond);
}

// --- ElastiCache policy -------------------------------------------------------

TEST(ElasticachePolicyTest, SpillsWhenFull) {
  ElasticachePolicy ec(1000);
  ASSERT_TRUE(ec.RegisterJob("j1", 0).ok());
  TierSplit a = ec.WriteStage("j1", "s0", 600);
  EXPECT_EQ(a.dram_bytes, 600u);
  EXPECT_EQ(a.spill_bytes, 0u);
  TierSplit b = ec.WriteStage("j1", "s1", 600);
  EXPECT_EQ(b.dram_bytes, 400u);
  EXPECT_EQ(b.spill_bytes, 200u);
  EXPECT_EQ(ec.UsedBytes(), 1000u);
}

TEST(ElasticachePolicyTest, ReleaseStageFreesNothingUntilJobEnd) {
  ElasticachePolicy ec(1000);
  ASSERT_TRUE(ec.RegisterJob("j1", 0).ok());
  ec.WriteStage("j1", "s0", 800);
  ec.ReleaseStage("j1", "s0");
  // Live data drops, but the DRAM stays occupied (coarse lifetime): a new
  // stage only gets the remaining 200 bytes.
  EXPECT_EQ(ec.UsedBytes(), 0u);
  EXPECT_EQ(ec.ResidentBytes(), 800u);
  TierSplit w = ec.WriteStage("j1", "s1", 500);
  EXPECT_EQ(w.dram_bytes, 200u);
  EXPECT_EQ(w.spill_bytes, 300u);
  ec.EndJob("j1");
  EXPECT_EQ(ec.ResidentBytes(), 0u);
  EXPECT_EQ(ec.UsedBytes(), 0u);
}

TEST(ElasticachePolicyTest, AllocatedIsAlwaysFullCapacity) {
  ElasticachePolicy ec(5000);
  EXPECT_EQ(ec.AllocatedBytes(), 5000u);  // Statically provisioned.
}

// --- Pocket policy --------------------------------------------------------------

TEST(PocketPolicyTest, ReservesDeclaredDemandForLifetime) {
  PocketPolicy pocket(10 * 128, 128);
  ASSERT_TRUE(pocket.RegisterJob("j1", 512).ok());
  EXPECT_EQ(pocket.AllocatedBytes(), 512u);  // 4 blocks.
  // A second job can only reserve what is left.
  ASSERT_TRUE(pocket.RegisterJob("j2", 1024).ok());
  EXPECT_EQ(pocket.AllocatedBytes(), 1280u);  // Capped at capacity.
  TierSplit w = pocket.WriteStage("j2", "s0", 1024);
  EXPECT_EQ(w.dram_bytes, 768u);
  EXPECT_EQ(w.spill_bytes, 256u);
}

TEST(PocketPolicyTest, ReleaseReturnsToJobNotPool) {
  PocketPolicy pocket(1024, 128);
  ASSERT_TRUE(pocket.RegisterJob("j1", 1024).ok());
  pocket.WriteStage("j1", "s0", 512);
  pocket.ReleaseStage("j1", "s0");
  EXPECT_EQ(pocket.UsedBytes(), 0u);
  // Reservation is still held: a second job gets nothing.
  ASSERT_TRUE(pocket.RegisterJob("j2", 512).ok());
  TierSplit w = pocket.WriteStage("j2", "s0", 512);
  EXPECT_EQ(w.dram_bytes, 0u);
  EXPECT_EQ(w.spill_bytes, 512u);
  // After j1 ends, the pool frees up for future jobs.
  pocket.EndJob("j1");
  EXPECT_EQ(pocket.AllocatedBytes(), 0u);
}

TEST(PocketPolicyTest, LaterStagesReuseJobReservation) {
  PocketPolicy pocket(1024, 128);
  ASSERT_TRUE(pocket.RegisterJob("j1", 512).ok());
  pocket.WriteStage("j1", "s0", 512);
  pocket.ReleaseStage("j1", "s0");
  TierSplit w = pocket.WriteStage("j1", "s1", 512);
  EXPECT_EQ(w.dram_bytes, 512u);  // Freed space reused within the job.
}

// --- Jiffy policy ---------------------------------------------------------------

class JiffyPolicyTest : public ::testing::Test {
 protected:
  JiffyPolicyTest() {
    config_.num_memory_servers = 2;
    config_.blocks_per_server = 8;   // 16 blocks × 1 KiB.
    config_.block_size_bytes = 1024;
    config_.lease_duration = 1 * kSecond;
    policy_ = std::make_unique<JiffyPolicy>(config_, &clock_);
  }

  JiffyConfig config_;
  SimClock clock_;
  std::unique_ptr<JiffyPolicy> policy_;
};

TEST_F(JiffyPolicyTest, AllocatesAtBlockGranularity) {
  ASSERT_TRUE(policy_->RegisterJob("j1", /*declared=*/0).ok());
  TierSplit w = policy_->WriteStage("j1", "s0", 2500);
  EXPECT_EQ(w.dram_bytes, 2500u);
  EXPECT_EQ(w.spill_bytes, 0u);
  EXPECT_EQ(policy_->AllocatedBytes(), 3u * 1024u);  // ceil(2500/1024).
}

TEST_F(JiffyPolicyTest, SpillsOnlyWhenPoolExhausted) {
  ASSERT_TRUE(policy_->RegisterJob("j1", 0).ok());
  TierSplit w = policy_->WriteStage("j1", "s0", 20 * 1024);
  EXPECT_EQ(w.dram_bytes, 16u * 1024u);
  EXPECT_EQ(w.spill_bytes, 4u * 1024u);
}

TEST_F(JiffyPolicyTest, LeaseExpiryReclaimsReleasedStages) {
  ASSERT_TRUE(policy_->RegisterJob("j1", 0).ok());
  policy_->WriteStage("j1", "s0", 4 * 1024);
  EXPECT_EQ(policy_->AllocatedBytes(), 4u * 1024u);
  policy_->ReleaseStage("j1", "s0");
  // Lease not yet lapsed.
  clock_.AdvanceBy(500 * kMillisecond);
  policy_->Tick();
  EXPECT_EQ(policy_->AllocatedBytes(), 4u * 1024u);
  // Lease lapses → blocks return to the pool and another job can use them.
  clock_.AdvanceBy(600 * kMillisecond);
  policy_->Tick();
  EXPECT_EQ(policy_->AllocatedBytes(), 0u);
  ASSERT_TRUE(policy_->RegisterJob("j2", 0).ok());
  TierSplit w = policy_->WriteStage("j2", "s0", 16 * 1024);
  EXPECT_EQ(w.spill_bytes, 0u);
}

TEST_F(JiffyPolicyTest, ActiveStagesSurviveTicks) {
  ASSERT_TRUE(policy_->RegisterJob("j1", 0).ok());
  policy_->WriteStage("j1", "s0", 2 * 1024);
  for (int i = 0; i < 5; ++i) {
    clock_.AdvanceBy(800 * kMillisecond);
    policy_->Tick();  // Renews active stage leases.
  }
  EXPECT_EQ(policy_->AllocatedBytes(), 2u * 1024u);
}

TEST_F(JiffyPolicyTest, EndJobFreesImmediately) {
  ASSERT_TRUE(policy_->RegisterJob("j1", 0).ok());
  policy_->WriteStage("j1", "s0", 2 * 1024);
  policy_->EndJob("j1");
  EXPECT_EQ(policy_->AllocatedBytes(), 0u);
  EXPECT_EQ(policy_->UsedBytes(), 0u);
}

// --- Rendezvous server -----------------------------------------------------------

TEST(RendezvousTest, SendThenReceive) {
  Transport net(NetworkModel::Loopback(), Transport::Mode::kZero, nullptr);
  RendezvousServer server(&net, /*poll_interval=*/1 * kMillisecond);
  server.Send("task1", "state-blob");
  auto msg = server.Receive("task1", 100 * kMillisecond);
  ASSERT_TRUE(msg.ok());
  EXPECT_EQ(*msg, "state-blob");
  EXPECT_EQ(server.Pending(), 0u);
}

TEST(RendezvousTest, ReceiveTimesOut) {
  Transport net(NetworkModel::Loopback(), Transport::Mode::kZero, nullptr);
  RendezvousServer server(&net, 1 * kMillisecond);
  auto msg = server.Receive("nobody", 10 * kMillisecond);
  EXPECT_EQ(msg.status().code(), StatusCode::kTimeout);
  EXPECT_GT(server.total_polls(), 1u);  // It really polled.
}

TEST(RendezvousTest, PollingQuantizesWaitTime) {
  Transport net(NetworkModel::Loopback(), Transport::Mode::kZero, nullptr);
  RendezvousServer server(&net, 20 * kMillisecond);
  std::thread sender([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    server.Send("t", "m");
  });
  const TimeNs start = RealClock::Instance()->Now();
  auto msg = server.Receive("t", 1 * kSecond);
  const DurationNs waited = RealClock::Instance()->Now() - start;
  sender.join();
  ASSERT_TRUE(msg.ok());
  // The message arrived ~5 ms in but polling delays pickup to ~20 ms.
  EXPECT_GE(waited, 15 * kMillisecond);
}

}  // namespace
}  // namespace jiffy
