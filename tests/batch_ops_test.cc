// Tests for the batched data plane (DESIGN.md §7): multi-op client APIs,
// per-block coalescing on the wire (RoundTripBatch accounting), per-item
// statuses, merged stale-metadata retries under concurrent repartitioning,
// replicated batches, and degenerate (empty/oversized) batches.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/client/jiffy_client.h"
#include "src/ds/kv_content.h"
#include "src/ds/queue_content.h"

namespace jiffy {
namespace {

class BatchOpsTest : public ::testing::Test {
 protected:
  explicit BatchOpsTest(size_t block_size = 4096) {
    JiffyCluster::Options opts;
    opts.config.num_memory_servers = 4;
    opts.config.blocks_per_server = 64;
    opts.config.block_size_bytes = block_size;
    opts.config.lease_duration = 3600 * kSecond;
    cluster_ = std::make_unique<JiffyCluster>(opts);
    client_ = std::make_unique<JiffyClient>(cluster_.get());
    EXPECT_TRUE(client_->RegisterJob("job").ok());
  }

  CreateOptions Replicated(uint32_t r) {
    CreateOptions opts;
    opts.replication_factor = r;
    return opts;
  }

  std::unique_ptr<JiffyCluster> cluster_;
  std::unique_ptr<JiffyClient> client_;
};

// Large blocks: no repartitioning noise, exact wire accounting.
class BatchOpsBigBlockTest : public BatchOpsTest {
 protected:
  BatchOpsBigBlockTest() : BatchOpsTest(1 << 20) {}
};

// --- KV ----------------------------------------------------------------------

TEST_F(BatchOpsBigBlockTest, MultiPutCoalescesToOneExchangePerBlock) {
  ASSERT_TRUE(client_->CreateAddrPrefix("/job/kv", {}).ok());
  auto kv = client_->OpenKv("/job/kv");
  ASSERT_TRUE(kv.ok());
  ASSERT_EQ((*kv)->CachedMap().entries.size(), 1u);

  std::vector<std::pair<std::string, std::string>> pairs;
  for (int i = 0; i < 32; ++i) {
    pairs.emplace_back("k" + std::to_string(i), "v" + std::to_string(i));
  }
  Transport* net = cluster_->data_transport();
  const uint64_t rpcs0 = net->total_rpcs();
  const uint64_t ops0 = net->total_ops();
  for (const Status& st : (*kv)->MultiPut(pairs)) {
    EXPECT_TRUE(st.ok());
  }
  // One destination block → one coalesced exchange carrying all 32 ops.
  EXPECT_EQ(net->total_rpcs() - rpcs0, 1u);
  EXPECT_EQ(net->total_ops() - ops0, 32u);

  std::vector<std::string> keys;
  for (const auto& [k, v] : pairs) {
    (void)v;
    keys.push_back(k);
  }
  const uint64_t rpcs1 = net->total_rpcs();
  auto results = (*kv)->MultiGet(keys);
  EXPECT_EQ(net->total_rpcs() - rpcs1, 1u);
  ASSERT_EQ(results.size(), keys.size());
  for (size_t i = 0; i < results.size(); ++i) {
    ASSERT_TRUE(results[i].ok());
    EXPECT_EQ(*results[i], pairs[i].second);
  }
}

TEST_F(BatchOpsBigBlockTest, MultiGetReportsPerItemHitAndMiss) {
  ASSERT_TRUE(client_->CreateAddrPrefix("/job/kv", {}).ok());
  auto kv = client_->OpenKv("/job/kv");
  ASSERT_TRUE((*kv)->Put("present", "x").ok());
  auto results = (*kv)->MultiGet(std::vector<std::string_view>{"present", "absent", "present"});
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0].ok());
  EXPECT_EQ(*results[0], "x");
  EXPECT_EQ(results[1].status().code(), StatusCode::kNotFound);
  EXPECT_TRUE(results[2].ok());
}

TEST_F(BatchOpsBigBlockTest, MultiDeleteReportsPerItemStatus) {
  ASSERT_TRUE(client_->CreateAddrPrefix("/job/kv", {}).ok());
  auto kv = client_->OpenKv("/job/kv");
  ASSERT_TRUE((*kv)->Put("a", "1").ok());
  ASSERT_TRUE((*kv)->Put("b", "2").ok());
  auto statuses = (*kv)->MultiDelete(std::vector<std::string_view>{"a", "missing", "b"});
  ASSERT_EQ(statuses.size(), 3u);
  EXPECT_TRUE(statuses[0].ok());
  EXPECT_EQ(statuses[1].code(), StatusCode::kNotFound);
  EXPECT_TRUE(statuses[2].ok());
  EXPECT_EQ((*kv)->Get("a").status().code(), StatusCode::kNotFound);
}

TEST_F(BatchOpsTest, MultiPutSpansMultipleBlocks) {
  // 4 KiB blocks: enough pairs split the slot range across several blocks;
  // the batch must land every item regardless of how the map fragments.
  ASSERT_TRUE(client_->CreateAddrPrefix("/job/kv", {}).ok());
  auto kv = client_->OpenKv("/job/kv");
  std::vector<std::pair<std::string, std::string>> pairs;
  for (int i = 0; i < 300; ++i) {
    pairs.emplace_back("key" + std::to_string(i), std::string(32, 'v'));
  }
  for (const Status& st : (*kv)->MultiPut(pairs)) {
    ASSERT_TRUE(st.ok());
  }
  if (cluster_->repartitioner() != nullptr) {
    cluster_->repartitioner()->WaitIdle();
  }
  ASSERT_TRUE((*kv)->RefreshMap().ok());
  EXPECT_GT((*kv)->CachedMap().entries.size(), 1u);
  auto results = (*kv)->MultiGet(std::vector<std::string_view>{"key0", "key150", "key299"});
  for (const auto& r : results) {
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->size(), 32u);
  }
}

TEST_F(BatchOpsTest, MultiPutRacingConcurrentSplitNeverDropsAppliedItems) {
  // Writer A's cached map goes stale when writer B's traffic splits the
  // shard mid-run. The per-item retry merge must re-send ONLY displaced
  // items, and a status of Ok must mean the item is actually readable.
  ASSERT_TRUE(client_->CreateAddrPrefix("/job/kv", {}).ok());
  auto kv_a = client_->OpenKv("/job/kv");
  auto kv_b = client_->OpenKv("/job/kv");
  ASSERT_TRUE(kv_a.ok());
  ASSERT_TRUE(kv_b.ok());

  std::atomic<bool> stop{false};
  std::thread churn([&] {
    int i = 0;
    while (!stop.load()) {
      (*kv_b)->Put("churn" + std::to_string(i++ % 512), std::string(64, 'c'));
    }
  });

  std::vector<std::pair<std::string, std::string>> pairs;
  for (int round = 0; round < 20; ++round) {
    pairs.clear();
    for (int i = 0; i < 64; ++i) {
      pairs.emplace_back("batch" + std::to_string(round) + "-" +
                             std::to_string(i),
                         "v" + std::to_string(round));
    }
    auto statuses = (*kv_a)->MultiPut(pairs);
    ASSERT_EQ(statuses.size(), pairs.size());
    for (size_t i = 0; i < statuses.size(); ++i) {
      ASSERT_TRUE(statuses[i].ok()) << statuses[i].ToString();
      // Success must imply the item was applied, split races included.
      auto got = (*kv_a)->Get(pairs[i].first);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      EXPECT_EQ(*got, pairs[i].second);
    }
  }
  stop.store(true);
  churn.join();
}

TEST_F(BatchOpsBigBlockTest, ReplicatedMultiPutReachesAllReplicas) {
  ASSERT_TRUE(
      client_->CreateAddrPrefix("/job/kv", {}, Replicated(3)).ok());
  auto kv = client_->OpenKv("/job/kv");
  ASSERT_TRUE(kv.ok());
  std::vector<std::pair<std::string, std::string>> pairs;
  for (int i = 0; i < 16; ++i) {
    pairs.emplace_back("r" + std::to_string(i), "val" + std::to_string(i));
  }
  Transport* net = cluster_->data_transport();
  const uint64_t rpcs0 = net->total_rpcs();
  for (const Status& st : (*kv)->MultiPut(pairs)) {
    ASSERT_TRUE(st.ok());
  }
  // Primary exchange + one coalesced chain hop per replica.
  EXPECT_EQ(net->total_rpcs() - rpcs0, 3u);
  auto map = (*kv)->CachedMap();
  ASSERT_EQ(map.entries.size(), 1u);
  ASSERT_EQ(map.entries[0].replicas.size(), 2u);
  for (const BlockId& rid : map.entries[0].replicas) {
    Block* rb = cluster_->ResolveBlock(rid);
    ASSERT_NE(rb, nullptr);
    auto* shard = ContentAs<KvShard>(rb->content());
    ASSERT_NE(shard, nullptr);
    for (const auto& [k, v] : pairs) {
      EXPECT_EQ(*shard->Get(k), v);
    }
  }
}

TEST_F(BatchOpsBigBlockTest, EmptyBatchesAreNoOps) {
  ASSERT_TRUE(client_->CreateAddrPrefix("/job/kv", {}).ok());
  ASSERT_TRUE(client_->CreateAddrPrefix("/job/q", {}).ok());
  auto kv = client_->OpenKv("/job/kv");
  auto q = client_->OpenQueue("/job/q");
  Transport* net = cluster_->data_transport();
  const uint64_t rpcs0 = net->total_rpcs();
  EXPECT_TRUE((*kv)->MultiPut(std::vector<std::pair<std::string_view, std::string_view>>{}).empty());
  EXPECT_TRUE((*kv)->MultiGet(std::vector<std::string_view>{}).empty());
  EXPECT_TRUE((*kv)->MultiDelete(std::vector<std::string_view>{}).empty());
  EXPECT_TRUE((*q)->EnqueueBatch(std::vector<std::string_view>{}).ok());
  auto drained = (*q)->DequeueBatch(0);
  ASSERT_TRUE(drained.ok());
  EXPECT_TRUE(drained->empty());
  EXPECT_EQ(net->total_rpcs() - rpcs0, 0u);
}

// --- Queue -------------------------------------------------------------------

TEST_F(BatchOpsTest, EnqueueBatchSpansSegmentsAndDequeueBatchKeepsFifo) {
  // 4 KiB segments force the batch to grow the tail mid-way; the suffix
  // (not the whole batch) must move to the new segment, preserving order.
  ASSERT_TRUE(client_->CreateAddrPrefix("/job/q", {}).ok());
  auto q = client_->OpenQueue("/job/q");
  ASSERT_TRUE(q.ok());
  std::vector<std::string> items;
  for (int i = 0; i < 200; ++i) {
    items.push_back("item" + std::to_string(i) + std::string(48, 'x'));
  }
  ASSERT_TRUE((*q)->EnqueueBatch(items).ok());
  EXPECT_GT((*q)->CachedMap().entries.size(), 1u);

  std::vector<std::string> out;
  while (out.size() < items.size()) {
    auto batch = (*q)->DequeueBatch(64);
    ASSERT_TRUE(batch.ok());
    ASSERT_FALSE(batch->empty()) << "queue drained early at " << out.size();
    for (auto& item : *batch) {
      out.push_back(std::move(item));
    }
  }
  EXPECT_EQ(out, items);
  auto empty = (*q)->DequeueBatch(8);
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
}

TEST_F(BatchOpsBigBlockTest, EnqueueBatchCoalescesAndRespectsBound) {
  ASSERT_TRUE(client_->CreateAddrPrefix("/job/q", {}).ok());
  auto q = client_->OpenQueue("/job/q");
  (*q)->SetMaxQueueLength(10);
  // Oversized vs the bound: rejected up front, queue untouched.
  std::vector<std::string> too_many(11, "x");
  EXPECT_EQ((*q)->EnqueueBatch(too_many).code(), StatusCode::kUnavailable);
  EXPECT_EQ((*q)->ApproxSize(), 0);

  Transport* net = cluster_->data_transport();
  const uint64_t rpcs0 = net->total_rpcs();
  const uint64_t ops0 = net->total_ops();
  std::vector<std::string> ten(10, "y");
  ASSERT_TRUE((*q)->EnqueueBatch(ten).ok());
  EXPECT_EQ(net->total_rpcs() - rpcs0, 1u);
  EXPECT_EQ(net->total_ops() - ops0, 10u);
  EXPECT_EQ((*q)->ApproxSize(), 10);
}

TEST_F(BatchOpsBigBlockTest, ReplicatedQueueBatchesStayInSync) {
  ASSERT_TRUE(client_->CreateAddrPrefix("/job/q", {}, Replicated(2)).ok());
  auto q = client_->OpenQueue("/job/q");
  ASSERT_TRUE(q.ok());
  std::vector<std::string> items;
  for (int i = 0; i < 24; ++i) {
    items.push_back("it" + std::to_string(i));
  }
  ASSERT_TRUE((*q)->EnqueueBatch(items).ok());
  auto map = (*q)->CachedMap();
  ASSERT_EQ(map.entries[0].replicas.size(), 1u);
  {
    Block* rb = cluster_->ResolveBlock(map.entries[0].replicas[0]);
    ASSERT_NE(rb, nullptr);
    auto* seg = ContentAs<QueueSegment>(rb->content());
    ASSERT_NE(seg, nullptr);
    EXPECT_EQ(seg->item_count(), items.size());
  }
  auto half = (*q)->DequeueBatch(12);
  ASSERT_TRUE(half.ok());
  ASSERT_EQ(half->size(), 12u);
  {
    Block* rb = cluster_->ResolveBlock(map.entries[0].replicas[0]);
    auto* seg = ContentAs<QueueSegment>(rb->content());
    ASSERT_NE(seg, nullptr);
    EXPECT_EQ(seg->item_count(), items.size() - 12);
  }
}

// --- File --------------------------------------------------------------------

TEST_F(BatchOpsTest, AppendVecSpansChunksAndReadVecStitches) {
  ASSERT_TRUE(client_->CreateAddrPrefix("/job/f", {}).ok());
  auto file = client_->OpenFile("/job/f");
  ASSERT_TRUE(file.ok());
  std::vector<std::string> pieces;
  std::string expect;
  for (int i = 0; i < 40; ++i) {
    pieces.push_back(std::string(200, static_cast<char>('a' + i % 26)));
    expect += pieces.back();
  }
  std::vector<std::string_view> views(pieces.begin(), pieces.end());
  auto off = (*file)->AppendVec(views);
  ASSERT_TRUE(off.ok());
  EXPECT_EQ(*off, 0u);
  // 40 × 200 B ≫ one 4 KiB chunk: the scatter list crossed chunks.
  EXPECT_GT((*file)->CachedMap().entries.size(), 1u);
  auto whole = (*file)->Read(0, expect.size());
  ASSERT_TRUE(whole.ok());
  EXPECT_EQ(*whole, expect);

  auto parts = (*file)->ReadVec(
      {{0, 100}, {3500, 1000}, {expect.size() - 10, 100}, {expect.size() + 5000, 7}});
  ASSERT_EQ(parts.size(), 4u);
  ASSERT_TRUE(parts[0].ok());
  EXPECT_EQ(*parts[0], expect.substr(0, 100));
  ASSERT_TRUE(parts[1].ok());
  EXPECT_EQ(*parts[1], expect.substr(3500, 1000));
  ASSERT_TRUE(parts[2].ok());
  EXPECT_EQ(*parts[2], expect.substr(expect.size() - 10));  // Short at EOF.
  ASSERT_TRUE(parts[3].ok());
  EXPECT_TRUE(parts[3]->empty());  // Entirely past EOF.
}

TEST_F(BatchOpsBigBlockTest, AppendVecEmptyAndReadVecCoalesce) {
  ASSERT_TRUE(client_->CreateAddrPrefix("/job/f", {}).ok());
  auto file = client_->OpenFile("/job/f");
  auto off = (*file)->AppendVec({});
  ASSERT_TRUE(off.ok());
  ASSERT_TRUE((*file)->AppendVec({"hello ", "", "world"}).ok());
  Transport* net = cluster_->data_transport();
  const uint64_t rpcs0 = net->total_rpcs();
  auto parts = (*file)->ReadVec({{0, 5}, {6, 5}});
  EXPECT_EQ(net->total_rpcs() - rpcs0, 1u);  // Same chunk → one exchange.
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(*parts[0], "hello");
  EXPECT_EQ(*parts[1], "world");
}

}  // namespace
}  // namespace jiffy
