// End-to-end client tests over a full cluster: the Table 1 API, the three
// data structures with elastic scaling, stale-metadata recovery, and
// notifications.

#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "src/client/jiffy_client.h"
#include "src/common/clock.h"

namespace jiffy {
namespace {

class ClientTest : public ::testing::Test {
 protected:
  ClientTest() {
    JiffyCluster::Options opts;
    opts.config.num_memory_servers = 4;
    opts.config.blocks_per_server = 64;
    opts.config.block_size_bytes = 4096;
    opts.config.lease_duration = 60 * kSecond;  // Leases off for most tests.
    opts.clock = &clock_;
    cluster_ = std::make_unique<JiffyCluster>(opts);
    client_ = std::make_unique<JiffyClient>(cluster_.get());
    EXPECT_TRUE(client_->RegisterJob("job").ok());
  }

  // Lets the background repartitioner finish every pending split/merge so
  // assertions about the partition map are deterministic.
  void DrainRepartitioner() {
    if (cluster_->repartitioner() != nullptr) {
      cluster_->repartitioner()->WaitIdle();
    }
  }

  SimClock clock_;
  std::unique_ptr<JiffyCluster> cluster_;
  std::unique_ptr<JiffyClient> client_;
};

// --- API surface ---------------------------------------------------------------

TEST_F(ClientTest, CreateHierarchyAndLeaseApi) {
  ASSERT_TRUE(client_
                  ->CreateHierarchy("job", {{"map", {}},
                                            {"reduce", {"map"}}})
                  .ok());
  auto lease = client_->GetLeaseDuration("/job/map");
  ASSERT_TRUE(lease.ok());
  EXPECT_EQ(*lease, 60 * kSecond);
  EXPECT_TRUE(client_->RenewLease("/job/map/reduce").ok());
  EXPECT_FALSE(client_->RenewLease("/job/reduce/map").ok());  // Not an edge.
}

TEST_F(ClientTest, OpenRejectsTypeMismatch) {
  ASSERT_TRUE(client_->CreateAddrPrefix("/job/t", {}).ok());
  ASSERT_TRUE(client_->OpenFile("/job/t").ok());
  EXPECT_EQ(client_->OpenKv("/job/t").status().code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(ClientTest, OpenAttachesToExistingDs) {
  ASSERT_TRUE(client_->CreateAddrPrefix("/job/t", {}).ok());
  auto a = client_->OpenKv("/job/t");
  auto b = client_->OpenKv("/job/t");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE((*a)->Put("k", "v").ok());
  EXPECT_EQ(*(*b)->Get("k"), "v");
}

// --- File ------------------------------------------------------------------------

TEST_F(ClientTest, FileAppendRead) {
  ASSERT_TRUE(client_->CreateAddrPrefix("/job/f", {}).ok());
  auto file = client_->OpenFile("/job/f");
  ASSERT_TRUE(file.ok());
  auto off1 = (*file)->Append("hello ");
  auto off2 = (*file)->Append("world");
  ASSERT_TRUE(off1.ok());
  ASSERT_TRUE(off2.ok());
  EXPECT_EQ(*off1, 0u);
  EXPECT_EQ(*off2, 6u);
  EXPECT_EQ(*(*file)->Read(0, 11), "hello world");
  EXPECT_EQ(*(*file)->Read(6, 5), "world");
  EXPECT_EQ(*(*file)->Size(), 11u);
}

TEST_F(ClientTest, FileGrowsAcrossBlocks) {
  ASSERT_TRUE(client_->CreateAddrPrefix("/job/big", {}).ok());
  auto file = client_->OpenFile("/job/big");
  ASSERT_TRUE(file.ok());
  // Write 10× the block size in 1 KiB pieces.
  std::string piece(1024, 'x');
  for (int i = 0; i < 40; ++i) {
    piece[0] = static_cast<char>('a' + (i % 26));
    ASSERT_TRUE((*file)->Append(piece).ok()) << i;
  }
  EXPECT_GT((*file)->CachedMap().entries.size(), 5u);
  // Spot-check content across block boundaries.
  auto r = (*file)->Read(0, 1);
  EXPECT_EQ(*r, "a");
  auto size = (*file)->Size();
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 40u * 1024u);
  // Read spanning several blocks comes back the right length.
  auto span = (*file)->Read(1000, 8000);
  ASSERT_TRUE(span.ok());
  EXPECT_EQ(span->size(), 8000u);
}

TEST_F(ClientTest, FileLargeSingleAppendSpansBlocks) {
  ASSERT_TRUE(client_->CreateAddrPrefix("/job/one", {}).ok());
  auto file = client_->OpenFile("/job/one");
  ASSERT_TRUE(file.ok());
  std::string big(3 * 4096 + 100, 'z');
  auto off = (*file)->Append(big);
  ASSERT_TRUE(off.ok());
  auto back = (*file)->Read(0, big.size());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->size(), big.size());
  EXPECT_EQ(*back, big);
}

TEST_F(ClientTest, FileReadPastEofIsShort) {
  ASSERT_TRUE(client_->CreateAddrPrefix("/job/f2", {}).ok());
  auto file = client_->OpenFile("/job/f2");
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append("abc").ok());
  auto r = (*file)->Read(1, 100);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, "bc");
  EXPECT_EQ(*(*file)->Read(100, 10), "");
}

TEST_F(ClientTest, StaleFileClientRecovers) {
  ASSERT_TRUE(client_->CreateAddrPrefix("/job/sh", {}).ok());
  auto w1 = client_->OpenFile("/job/sh");
  auto w2 = client_->OpenFile("/job/sh");
  ASSERT_TRUE(w1.ok());
  ASSERT_TRUE(w2.ok());
  // w1 fills several blocks; w2's cached map is now stale.
  std::string piece(2048, 'p');
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE((*w1)->Append(piece).ok());
  }
  // w2 appends through its stale map and must land at the true tail.
  auto off = (*w2)->Append("tail-marker");
  ASSERT_TRUE(off.ok());
  auto r = (*w1)->Read(*off, 11);
  EXPECT_EQ(*r, "tail-marker");
}

// --- Queue ------------------------------------------------------------------------

TEST_F(ClientTest, QueueFifoAcrossSegments) {
  ASSERT_TRUE(client_->CreateAddrPrefix("/job/q", {}).ok());
  auto q = client_->OpenQueue("/job/q");
  ASSERT_TRUE(q.ok());
  // Push enough 256-byte items to span several 4 KiB segments.
  for (int i = 0; i < 100; ++i) {
    std::string item = std::to_string(i) + std::string(250, '.');
    ASSERT_TRUE((*q)->Enqueue(std::move(item)).ok()) << i;
  }
  EXPECT_GT((*q)->CachedMap().entries.size(), 1u);
  for (int i = 0; i < 100; ++i) {
    auto item = (*q)->Dequeue();
    ASSERT_TRUE(item.ok()) << i;
    EXPECT_EQ(item->substr(0, item->find('.')), std::to_string(i));
  }
  EXPECT_EQ((*q)->Dequeue().status().code(), StatusCode::kNotFound);
}

TEST_F(ClientTest, QueueDrainedSegmentsAreReclaimed) {
  ASSERT_TRUE(client_->CreateAddrPrefix("/job/qr", {}).ok());
  auto q = client_->OpenQueue("/job/qr");
  ASSERT_TRUE(q.ok());
  const uint32_t before = cluster_->allocator()->allocated_count();
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE((*q)->Enqueue(std::string(500, 'q')).ok());
  }
  const uint32_t grown = cluster_->allocator()->allocated_count();
  EXPECT_GT(grown, before);
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE((*q)->Dequeue().ok());
  }
  // All drained segments except the live tail are back in the pool.
  EXPECT_EQ(cluster_->allocator()->allocated_count(), before);
}

TEST_F(ClientTest, QueueMaxLengthBound) {
  ASSERT_TRUE(client_->CreateAddrPrefix("/job/qb", {}).ok());
  auto q = client_->OpenQueue("/job/qb");
  ASSERT_TRUE(q.ok());
  (*q)->SetMaxQueueLength(3);
  ASSERT_TRUE((*q)->Enqueue("a").ok());
  ASSERT_TRUE((*q)->Enqueue("b").ok());
  ASSERT_TRUE((*q)->Enqueue("c").ok());
  EXPECT_EQ((*q)->Enqueue("d").code(), StatusCode::kUnavailable);
  ASSERT_TRUE((*q)->Dequeue().ok());
  EXPECT_TRUE((*q)->Enqueue("d").ok());
}

TEST_F(ClientTest, QueueNotificationsFire) {
  ASSERT_TRUE(client_->CreateAddrPrefix("/job/qn", {}).ok());
  auto q = client_->OpenQueue("/job/qn");
  ASSERT_TRUE(q.ok());
  auto listener = (*q)->Subscribe(QueueClient::kEnqueueOp);
  ASSERT_TRUE((*q)->Enqueue("ding").ok());
  auto n = listener->Get(100 * kMillisecond);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n->op, "enqueue");
  EXPECT_EQ(n->subject, "/job/qn");
}

TEST_F(ClientTest, QueueDequeueWaitUnblocksOnEnqueue) {
  ASSERT_TRUE(client_->CreateAddrPrefix("/job/qw", {}).ok());
  auto q1 = client_->OpenQueue("/job/qw");
  auto q2 = client_->OpenQueue("/job/qw");
  ASSERT_TRUE(q1.ok());
  ASSERT_TRUE(q2.ok());
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    ASSERT_TRUE((*q2)->Enqueue("late-item").ok());
  });
  auto item = (*q1)->DequeueWait(2 * kSecond);
  producer.join();
  ASSERT_TRUE(item.ok()) << item.status();
  EXPECT_EQ(*item, "late-item");
}

// Regression: multiple producers with stale maps must never create a
// duplicate tail segment (which strands items behind an empty unsealed
// head — the consumer would wrongly conclude the queue is empty).
TEST_F(ClientTest, QueueManyProducersNoLostItems) {
  ASSERT_TRUE(client_->CreateAddrPrefix("/job/qmp", {}).ok());
  constexpr int kProducers = 4;
  constexpr int kItems = 500;  // ~4×500×(40+16)B spans many 4 KiB segments.
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      auto q = client_->OpenQueue("/job/qmp");
      ASSERT_TRUE(q.ok());
      for (int i = 0; i < kItems; ++i) {
        std::string item = "p" + std::to_string(p) + "-" + std::to_string(i) +
                           std::string(30, '.');
        ASSERT_TRUE((*q)->Enqueue(std::move(item)).ok()) << p << " " << i;
      }
    });
  }
  std::atomic<int> consumed{0};
  std::thread consumer([&] {
    auto q = client_->OpenQueue("/job/qmp");
    ASSERT_TRUE(q.ok());
    while (consumed.load() < kProducers * kItems) {
      auto item = (*q)->DequeueWait(5 * kSecond);
      if (!item.ok()) {
        break;  // Assertion below reports the shortfall.
      }
      consumed.fetch_add(1);
    }
  });
  for (auto& t : producers) {
    t.join();
  }
  consumer.join();
  EXPECT_EQ(consumed.load(), kProducers * kItems);
}

// --- KV --------------------------------------------------------------------------

TEST_F(ClientTest, KvPutGetDelete) {
  ASSERT_TRUE(client_->CreateAddrPrefix("/job/kv", {}).ok());
  auto kv = client_->OpenKv("/job/kv");
  ASSERT_TRUE(kv.ok());
  ASSERT_TRUE((*kv)->Put("alpha", "1").ok());
  EXPECT_EQ(*(*kv)->Get("alpha"), "1");
  EXPECT_EQ(*(*kv)->Exists("alpha"), true);
  ASSERT_TRUE((*kv)->Delete("alpha").ok());
  EXPECT_EQ((*kv)->Get("alpha").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(*(*kv)->Exists("alpha"), false);
}

TEST_F(ClientTest, KvSplitsUnderLoadAndKeepsAllData) {
  ASSERT_TRUE(client_->CreateAddrPrefix("/job/kvs", {}).ok());
  auto kv = client_->OpenKv("/job/kvs");
  ASSERT_TRUE(kv.ok());
  // ~40 KiB of pairs into 4 KiB blocks → many splits.
  for (int i = 0; i < 400; ++i) {
    ASSERT_TRUE(
        (*kv)->Put("key" + std::to_string(i), std::string(80, 'v')).ok())
        << i;
  }
  DrainRepartitioner();
  ASSERT_TRUE((*kv)->RefreshMap().ok());
  EXPECT_GT((*kv)->CachedMap().entries.size(), 4u);
  for (int i = 0; i < 400; ++i) {
    auto v = (*kv)->Get("key" + std::to_string(i));
    ASSERT_TRUE(v.ok()) << "key" << i << ": " << v.status();
    EXPECT_EQ(v->size(), 80u);
  }
  EXPECT_EQ(*(*kv)->CountPairs(), 400u);
}

TEST_F(ClientTest, KvSlotRangesStayDisjointAndComplete) {
  ASSERT_TRUE(client_->CreateAddrPrefix("/job/kvd", {}).ok());
  auto kv = client_->OpenKv("/job/kvd");
  ASSERT_TRUE(kv.ok());
  for (int i = 0; i < 600; ++i) {
    ASSERT_TRUE((*kv)->Put("k" + std::to_string(i), std::string(64, 'd')).ok());
  }
  DrainRepartitioner();
  ASSERT_TRUE((*kv)->RefreshMap().ok());
  auto map = (*kv)->CachedMap();
  // Sorted entries must tile [0, 1024) exactly.
  std::vector<std::pair<uint64_t, uint64_t>> ranges;
  for (const auto& e : map.entries) {
    ranges.emplace_back(e.lo, e.hi);
  }
  std::sort(ranges.begin(), ranges.end());
  uint64_t expect_lo = 0;
  for (const auto& [lo, hi] : ranges) {
    EXPECT_EQ(lo, expect_lo);
    EXPECT_GT(hi, lo);
    expect_lo = hi;
  }
  EXPECT_EQ(expect_lo, 1024u);
}

TEST_F(ClientTest, KvMergesAfterDeletes) {
  ASSERT_TRUE(client_->CreateAddrPrefix("/job/kvm", {}).ok());
  auto kv = client_->OpenKv("/job/kvm");
  ASSERT_TRUE(kv.ok());
  for (int i = 0; i < 400; ++i) {
    ASSERT_TRUE((*kv)->Put("k" + std::to_string(i), std::string(80, 'm')).ok());
  }
  DrainRepartitioner();
  ASSERT_TRUE((*kv)->RefreshMap().ok());
  const size_t blocks_at_peak = (*kv)->CachedMap().entries.size();
  ASSERT_GT(blocks_at_peak, 2u);
  for (int i = 0; i < 400; ++i) {
    ASSERT_TRUE((*kv)->Delete("k" + std::to_string(i)).ok()) << i;
  }
  DrainRepartitioner();
  ASSERT_TRUE((*kv)->RefreshMap().ok());
  EXPECT_LT((*kv)->CachedMap().entries.size(), blocks_at_peak);
  EXPECT_EQ(*(*kv)->CountPairs(), 0u);
}

TEST_F(ClientTest, KvStaleClientRoutesAfterSplit) {
  ASSERT_TRUE(client_->CreateAddrPrefix("/job/kvt", {}).ok());
  auto writer = client_->OpenKv("/job/kvt");
  auto reader = client_->OpenKv("/job/kvt");
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(reader.ok());
  // Writer forces splits; reader still holds the single-block map.
  for (int i = 0; i < 400; ++i) {
    ASSERT_TRUE(
        (*writer)->Put("key" + std::to_string(i), std::string(80, 's')).ok());
  }
  DrainRepartitioner();
  ASSERT_TRUE((*writer)->RefreshMap().ok());
  ASSERT_GT((*writer)->CachedMap().entries.size(),
            (*reader)->CachedMap().entries.size());
  // Reader transparently refreshes on stale routes.
  for (int i = 0; i < 400; i += 7) {
    auto v = (*reader)->Get("key" + std::to_string(i));
    ASSERT_TRUE(v.ok()) << i << ": " << v.status();
  }
}

TEST_F(ClientTest, ConcurrentKvWritersAreLinearizablePerKey) {
  ASSERT_TRUE(client_->CreateAddrPrefix("/job/kvc", {}).ok());
  constexpr int kThreads = 4;
  constexpr int kKeysPerThread = 150;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto kv = client_->OpenKv("/job/kvc");
      ASSERT_TRUE(kv.ok());
      for (int i = 0; i < kKeysPerThread; ++i) {
        const std::string key = "t" + std::to_string(t) + "-" + std::to_string(i);
        ASSERT_TRUE((*kv)->Put(key, key + "-value").ok());
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  auto kv = client_->OpenKv("/job/kvc");
  ASSERT_TRUE(kv.ok());
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kKeysPerThread; ++i) {
      const std::string key = "t" + std::to_string(t) + "-" + std::to_string(i);
      auto v = (*kv)->Get(key);
      ASSERT_TRUE(v.ok()) << key << ": " << v.status();
      EXPECT_EQ(*v, key + "-value");
    }
  }
  EXPECT_EQ(*(*kv)->CountPairs(),
            static_cast<size_t>(kThreads) * kKeysPerThread);
}

// --- Lease integration -------------------------------------------------------------

TEST_F(ClientTest, ExpiredKvIsFlushedAndLoadable) {
  JiffyCluster::Options opts;
  opts.config.num_memory_servers = 2;
  opts.config.blocks_per_server = 32;
  opts.config.block_size_bytes = 4096;
  opts.config.lease_duration = 1 * kSecond;
  SimClock clock;
  opts.clock = &clock;
  JiffyCluster cluster(opts);
  JiffyClient client(&cluster);
  ASSERT_TRUE(client.RegisterJob("j").ok());
  ASSERT_TRUE(client.CreateAddrPrefix("/j/kv", {}).ok());
  auto kv = client.OpenKv("/j/kv");
  ASSERT_TRUE(kv.ok());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE((*kv)->Put("k" + std::to_string(i), "v").ok());
  }
  clock.AdvanceBy(2 * kSecond);
  ASSERT_EQ(cluster.controller_shard(0)->RunExpiryScan(), 1u);
  // Gets now fail: memory reclaimed.
  EXPECT_EQ((*kv)->Get("k0").status().code(), StatusCode::kLeaseExpired);
  // Load the flushed data back and reattach.
  ASSERT_TRUE(client.LoadAddrPrefix("/j/kv", "jiffy/j/kv").ok());
  auto kv2 = client.OpenKv("/j/kv");
  ASSERT_TRUE(kv2.ok());
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(*(*kv2)->Get("k" + std::to_string(i)), "v") << i;
  }
}

}  // namespace
}  // namespace jiffy
