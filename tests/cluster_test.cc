// Tests for the cluster assembly: DataPlaneHooks, capacity accounting,
// controller sharding, and the real-time LeaseExpiryWorker thread.

#include <gtest/gtest.h>

#include <thread>

#include "src/client/jiffy_client.h"
#include "src/core/lease.h"
#include "src/ds/file_content.h"

namespace jiffy {
namespace {

TEST(ClusterTest, TopologyMatchesConfig) {
  JiffyCluster::Options opts;
  opts.config.num_memory_servers = 3;
  opts.config.blocks_per_server = 8;
  opts.config.block_size_bytes = 1024;
  opts.config.controller_shards = 4;
  JiffyCluster cluster(opts);
  EXPECT_EQ(cluster.num_memory_servers(), 3u);
  EXPECT_EQ(cluster.num_controller_shards(), 4u);
  EXPECT_EQ(cluster.TotalCapacityBytes(), 3u * 8u * 1024u);
  EXPECT_EQ(cluster.AllocatedBytes(), 0u);
}

TEST(ClusterTest, ControllerShardingIsStable) {
  JiffyCluster::Options opts;
  opts.config.controller_shards = 4;
  opts.config.num_memory_servers = 2;
  opts.config.blocks_per_server = 4;
  JiffyCluster cluster(opts);
  // The same job always maps to the same shard; different jobs spread.
  Controller* a = cluster.ControllerFor("job-a");
  EXPECT_EQ(a, cluster.ControllerFor("job-a"));
  std::set<Controller*> shards;
  for (int i = 0; i < 64; ++i) {
    shards.insert(cluster.ControllerFor("job" + std::to_string(i)));
  }
  EXPECT_GT(shards.size(), 1u);
}

TEST(ClusterTest, ShardedJobsAreIndependent) {
  JiffyCluster::Options opts;
  opts.config.controller_shards = 4;
  opts.config.num_memory_servers = 2;
  opts.config.blocks_per_server = 32;
  opts.config.block_size_bytes = 4096;
  JiffyCluster cluster(opts);
  JiffyClient client(&cluster);
  // Jobs across shards share the data plane (one allocator) but have
  // independent hierarchies.
  for (int i = 0; i < 8; ++i) {
    const std::string job = "job" + std::to_string(i);
    ASSERT_TRUE(client.RegisterJob(job).ok());
    ASSERT_TRUE(client.CreateAddrPrefix("/" + job + "/t", {}).ok());
    auto kv = client.OpenKv("/" + job + "/t");
    ASSERT_TRUE(kv.ok());
    ASSERT_TRUE((*kv)->Put("k", job).ok());
  }
  for (int i = 0; i < 8; ++i) {
    const std::string job = "job" + std::to_string(i);
    auto kv = client.OpenKv("/" + job + "/t");
    ASSERT_TRUE(kv.ok());
    EXPECT_EQ(*(*kv)->Get("k"), job);
  }
  EXPECT_EQ(cluster.allocator()->allocated_count(), 8u);
}

TEST(ClusterTest, HooksRoundTripAllTypes) {
  JiffyCluster::Options opts;
  opts.config.num_memory_servers = 1;
  opts.config.blocks_per_server = 8;
  opts.config.block_size_bytes = 4096;
  JiffyCluster cluster(opts);
  // Exercise the hooks directly: init → mutate → serialize → reset →
  // restore for each DS type.
  const BlockId id{0, 0};
  ASSERT_TRUE(cluster.InitBlock(id, DsType::kFile, 0, 4096, "j", "p").ok());
  Block* block = cluster.ResolveBlock(id);
  {
    Block::OpLock lock(*block);
    dynamic_cast<FileChunk*>(block->content())->Append("hook-bytes");
  }
  auto data = cluster.SerializeBlock(id);
  ASSERT_TRUE(data.ok());
  ASSERT_TRUE(cluster.ResetBlock(id).ok());
  EXPECT_FALSE(block->allocated());
  ASSERT_TRUE(cluster.RestoreBlock(id, DsType::kFile, *data, 0, 4096, "j", "p").ok());
  {
    Block::OpLock lock(*block);
    auto* chunk = dynamic_cast<FileChunk*>(block->content());
    ASSERT_NE(chunk, nullptr);
    EXPECT_EQ(*chunk->ReadAt(0, 10), "hook-bytes");
  }
  EXPECT_TRUE(cluster.IsBlockLive(id));
  EXPECT_FALSE(cluster.IsBlockLive(BlockId{9, 0}));
}

TEST(ClusterTest, UsedBytesTracksContent) {
  JiffyCluster::Options opts;
  opts.config.num_memory_servers = 2;
  opts.config.blocks_per_server = 8;
  opts.config.block_size_bytes = 4096;
  JiffyCluster cluster(opts);
  JiffyClient client(&cluster);
  ASSERT_TRUE(client.RegisterJob("j").ok());
  ASSERT_TRUE(client.CreateAddrPrefix("/j/f", {}).ok());
  auto file = client.OpenFile("/j/f");
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append(std::string(1000, 'x')).ok());
  EXPECT_EQ(cluster.UsedBytes(), 1000u);
  EXPECT_EQ(cluster.AllocatedBytes(), 4096u);
}

TEST(LeaseWorkerTest, BackgroundThreadReclaimsExpiredPrefixes) {
  // Real clock: a short lease plus a running expiry worker must reclaim
  // the prefix without any manual scan.
  JiffyCluster::Options opts;
  opts.config.num_memory_servers = 1;
  opts.config.blocks_per_server = 8;
  opts.config.block_size_bytes = 1024;
  opts.config.lease_duration = 60 * kMillisecond;
  JiffyCluster cluster(opts);
  JiffyClient client(&cluster);
  ASSERT_TRUE(client.RegisterJob("j").ok());
  CreateOptions copts;
  copts.init_ds = true;
  ASSERT_TRUE(client.CreateAddrPrefix("/j/t", {}, copts).ok());
  ASSERT_EQ(cluster.allocator()->allocated_count(), 1u);

  LeaseExpiryWorker worker({cluster.controller_shard(0)},
                           /*period=*/20 * kMillisecond);
  worker.Start();
  EXPECT_TRUE(worker.running());
  // Renew for a while: the worker must NOT reclaim a live lease.
  for (int i = 0; i < 5; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    ASSERT_TRUE(client.RenewLease("/j/t").ok());
  }
  EXPECT_EQ(cluster.allocator()->allocated_count(), 1u);
  // Stop renewing: reclaimed within a few scan periods.
  const TimeNs deadline = RealClock::Instance()->Now() + 2 * kSecond;
  while (cluster.allocator()->allocated_count() > 0 &&
         RealClock::Instance()->Now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(cluster.allocator()->allocated_count(), 0u);
  worker.Stop();
  EXPECT_FALSE(worker.running());
}

TEST(LeaseWorkerTest, StartStopIdempotent) {
  JiffyCluster::Options opts;
  opts.config.num_memory_servers = 1;
  opts.config.blocks_per_server = 2;
  JiffyCluster cluster(opts);
  LeaseExpiryWorker worker({cluster.controller_shard(0)}, 10 * kMillisecond);
  worker.Start();
  worker.Start();  // No-op.
  worker.Stop();
  worker.Stop();  // No-op.
  worker.Start();  // Restartable.
  worker.Stop();
}

TEST(ClusterTest, TransportAccountingVisible) {
  JiffyCluster::Options opts;
  opts.config.num_memory_servers = 1;
  opts.config.blocks_per_server = 4;
  opts.net_model = NetworkModel::Ec2IntraDc();
  JiffyCluster cluster(opts);
  JiffyClient client(&cluster);
  ASSERT_TRUE(client.RegisterJob("j").ok());
  ASSERT_TRUE(client.CreateAddrPrefix("/j/kv", {}).ok());
  auto kv = client.OpenKv("/j/kv");
  ASSERT_TRUE(kv.ok());
  const uint64_t data_ops_before = cluster.data_transport()->total_ops();
  ASSERT_TRUE((*kv)->Put("k", "v").ok());
  EXPECT_GT(cluster.data_transport()->total_ops(), data_ops_before);
  EXPECT_GT(cluster.control_transport()->total_ops(), 0u);
  EXPECT_GT(cluster.data_transport()->total_time(), 0);
}

}  // namespace
}  // namespace jiffy
