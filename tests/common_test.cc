// Unit tests for src/common: Status/Result, clocks, RNG + Zipf, histogram,
// hashing.

#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "src/common/clock.h"
#include "src/common/hash.h"
#include "src/common/histogram.h"
#include "src/common/random.h"
#include "src/common/status.h"

namespace jiffy {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = NotFound("missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "missing thing");
  EXPECT_EQ(s.ToString(), "NOT_FOUND: missing thing");
}

TEST(StatusTest, AllConstructorsProduceDistinctCodes) {
  EXPECT_EQ(AlreadyExists("").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(InvalidArgument("").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(OutOfMemory("").code(), StatusCode::kOutOfMemory);
  EXPECT_EQ(LeaseExpired("").code(), StatusCode::kLeaseExpired);
  EXPECT_EQ(PermissionDenied("").code(), StatusCode::kPermissionDenied);
  EXPECT_EQ(StaleMetadata("").code(), StatusCode::kStaleMetadata);
  EXPECT_EQ(Unavailable("").code(), StatusCode::kUnavailable);
  EXPECT_EQ(FailedPrecondition("").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(Timeout("").code(), StatusCode::kTimeout);
  EXPECT_EQ(Internal("").code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsStatus) {
  Result<int> r = NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

Result<int> Doubled(Result<int> in) {
  JIFFY_ASSIGN_OR_RETURN(int v, std::move(in));
  return v * 2;
}

TEST(ResultTest, AssignOrReturnMacro) {
  EXPECT_EQ(*Doubled(21), 42);
  EXPECT_EQ(Doubled(NotFound("x")).status().code(), StatusCode::kNotFound);
}

TEST(SimClockTest, AdvancesMonotonically) {
  SimClock clock(100);
  EXPECT_EQ(clock.Now(), 100);
  clock.AdvanceBy(50);
  EXPECT_EQ(clock.Now(), 150);
  clock.AdvanceTo(120);  // Backwards: no-op.
  EXPECT_EQ(clock.Now(), 150);
  clock.AdvanceTo(500);
  EXPECT_EQ(clock.Now(), 500);
}

TEST(SimClockTest, SleepWakesOnAdvance) {
  SimClock clock(0);
  std::atomic<bool> woke{false};
  std::thread sleeper([&] {
    clock.SleepFor(100);
    woke.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(woke.load());
  clock.AdvanceBy(100);
  sleeper.join();
  EXPECT_TRUE(woke.load());
}

TEST(RealClockTest, MonotoneAndSleeps) {
  RealClock* clock = RealClock::Instance();
  const TimeNs a = clock->Now();
  clock->SleepFor(1 * kMillisecond);
  const TimeNs b = clock->Now();
  EXPECT_GE(b - a, 1 * kMillisecond);
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, NextBelowInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(3);
  double sum = 0.0, sum2 = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(RngTest, LogNormalPositive) {
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GT(rng.NextLogNormal(0.0, 2.0), 0.0);
  }
}

TEST(ZipfTest, RangeAndSkew) {
  ZipfSampler zipf(1000, 0.99, 5);
  std::vector<uint64_t> counts(1000, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const uint64_t k = zipf.Next();
    ASSERT_LT(k, 1000u);
    counts[k]++;
  }
  // Rank-0 should dominate rank-100 heavily under theta≈1.
  EXPECT_GT(counts[0], counts[100] * 10);
  // And the head should hold a large share of mass.
  uint64_t head = 0;
  for (int i = 0; i < 10; ++i) {
    head += counts[i];
  }
  EXPECT_GT(static_cast<double>(head) / n, 0.2);
}

TEST(ZipfTest, ThetaNearOneDoesNotDivideByZero) {
  ZipfSampler zipf(100, 1.0, 6);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(zipf.Next(), 100u);
  }
}

TEST(HistogramTest, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Percentile(0.5), 0);
  EXPECT_TRUE(h.Cdf().empty());
}

TEST(HistogramTest, ExactSmallValues) {
  Histogram h;
  for (int i = 1; i <= 10; ++i) {
    h.Record(i);
  }
  EXPECT_EQ(h.count(), 10u);
  EXPECT_EQ(h.min(), 1);
  EXPECT_EQ(h.max(), 10);
  EXPECT_NEAR(h.mean(), 5.5, 1e-9);
  EXPECT_EQ(h.Percentile(0.0), 1);
  EXPECT_EQ(h.Percentile(1.0), 10);
}

TEST(HistogramTest, PercentileWithinRelativeError) {
  Histogram h;
  Rng rng(9);
  for (int i = 0; i < 100000; ++i) {
    h.Record(static_cast<int64_t>(rng.NextBelow(1000000)) + 1);
  }
  const int64_t p50 = h.Percentile(0.5);
  EXPECT_NEAR(static_cast<double>(p50), 500000.0, 500000.0 * 0.05);
}

TEST(HistogramTest, MergeCombinesCounts) {
  Histogram a, b;
  a.Record(10);
  b.Record(1000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.min(), 10);
  EXPECT_EQ(a.max(), 1000);
}

TEST(HistogramTest, CdfIsMonotone) {
  Histogram h;
  Rng rng(10);
  for (int i = 0; i < 10000; ++i) {
    h.Record(static_cast<int64_t>(rng.NextBelow(100000)));
  }
  double prev = 0.0;
  for (const auto& [v, frac] : h.Cdf()) {
    (void)v;
    EXPECT_GE(frac, prev);
    prev = frac;
  }
  EXPECT_NEAR(prev, 1.0, 1e-12);
}

TEST(HashTest, StableAndSpread) {
  EXPECT_EQ(Fnv1a64("jiffy"), Fnv1a64("jiffy"));
  EXPECT_NE(Fnv1a64("jiffy"), Fnv1a64("jiffz"));
  EXPECT_NE(HashKey1("key"), HashKey2("key"));
}

TEST(HistogramTest, EmptySummaryAndCdfEdgeCases) {
  Histogram h;
  EXPECT_EQ(h.Percentile(0.0), 0);
  EXPECT_EQ(h.Percentile(1.0), 0);
  EXPECT_TRUE(h.Cdf().empty());
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_EQ(h.mean(), 0.0);
  // Summary of an empty histogram must not divide by zero.
  EXPECT_FALSE(h.Summary(1000.0, "us").empty());
}

TEST(HistogramTest, SingleSample) {
  Histogram h;
  h.Record(777);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 777);
  EXPECT_EQ(h.max(), 777);
  EXPECT_NEAR(h.mean(), 777.0, 1e-9);
  // Every quantile of a one-sample distribution is that sample (within
  // bucket resolution for large values; 777 is in the exact range).
  EXPECT_EQ(h.Percentile(0.0), 777);
  EXPECT_EQ(h.Percentile(0.5), 777);
  EXPECT_EQ(h.Percentile(1.0), 777);
  auto cdf = h.Cdf();
  ASSERT_EQ(cdf.size(), 1u);
  EXPECT_NEAR(cdf[0].second, 1.0, 1e-12);
}

TEST(HistogramTest, MinMaxAfterReset) {
  Histogram h;
  h.Record(5);
  h.Record(500000);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  // Stale extrema must not leak into post-reset samples.
  h.Record(42);
  EXPECT_EQ(h.min(), 42);
  EXPECT_EQ(h.max(), 42);
}

TEST(HistogramTest, MergeDisjointRanges) {
  Histogram lo, hi;
  for (int i = 1; i <= 100; ++i) {
    lo.Record(i);              // [1, 100]
    hi.Record(1000000 + i);    // [1000001, 1000100]
  }
  lo.Merge(hi);
  EXPECT_EQ(lo.count(), 200u);
  EXPECT_EQ(lo.min(), 1);
  EXPECT_EQ(lo.max(), 1000100);
  // The median sits at the boundary between the two populations.
  EXPECT_LE(lo.Percentile(0.49), 100);
  EXPECT_GE(lo.Percentile(0.51), 1000000);
  // Merging into an empty histogram adopts the source's extrema.
  Histogram empty;
  empty.Merge(lo);
  EXPECT_EQ(empty.count(), 200u);
  EXPECT_EQ(empty.min(), 1);
  EXPECT_EQ(empty.max(), 1000100);
}

TEST(HistogramTest, SelfMergeDoublesCounts) {
  // Documented in the Merge locking contract: h.Merge(h) is safe (the lock
  // is taken twice sequentially, never recursively) and doubles counts.
  Histogram h;
  h.Record(10);
  h.Record(20);
  h.Merge(h);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.min(), 10);
  EXPECT_EQ(h.max(), 20);
}

TEST(HistogramTest, ConcurrentCrossMergeDoesNotDeadlock) {
  // T1 runs a.Merge(b) while T2 runs b.Merge(a): the snapshot-then-apply
  // locking (never holding both mutexes) makes any interleaving safe.
  Histogram a, b;
  for (int i = 0; i < 1000; ++i) {
    a.Record(i);
    b.Record(1000000 + i);
  }
  // Few iterations on purpose: cross-merges compound counts Fibonacci-style
  // (each merge re-adds everything the other side absorbed so far).
  std::thread t1([&] {
    for (int i = 0; i < 10; ++i) {
      a.Merge(b);
    }
  });
  std::thread t2([&] {
    for (int i = 0; i < 10; ++i) {
      b.Merge(a);
    }
  });
  t1.join();
  t2.join();
  EXPECT_GE(a.count(), 1000u + 10 * 1000u);
  EXPECT_GE(b.count(), 1000u + 10 * 1000u);
}

TEST(HistogramTest, ThreadSafeRecording) {
  Histogram h;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < 10000; ++i) {
        h.Record(t * 10000 + i);
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(h.count(), 40000u);
}

}  // namespace
}  // namespace jiffy
