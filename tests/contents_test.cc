// Unit tests for block contents: FileChunk, QueueSegment, KvShard, and
// their flush/restore serialization (§3.2, §5).

#include <gtest/gtest.h>

#include <string>

#include "src/ds/file_content.h"
#include "src/ds/kv_content.h"
#include "src/ds/queue_content.h"
#include "src/common/serde.h"

namespace jiffy {
namespace {

// --- FileChunk ---------------------------------------------------------------

TEST(FileChunkTest, AppendAndRead) {
  FileChunk chunk(64, /*base_offset=*/0);
  EXPECT_EQ(chunk.Append("hello "), 6u);
  EXPECT_EQ(chunk.Append("world"), 5u);
  EXPECT_EQ(chunk.used_bytes(), 11u);
  auto r = chunk.ReadAt(0, 11);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, "hello world");
  EXPECT_EQ(*chunk.ReadAt(6, 5), "world");
}

TEST(FileChunkTest, PartialAppendAtCapacity) {
  FileChunk chunk(8, 0);
  EXPECT_EQ(chunk.Append("0123456789"), 8u);
  EXPECT_EQ(chunk.used_bytes(), 8u);
  EXPECT_EQ(chunk.Append("x"), 0u);
}

TEST(FileChunkTest, BaseOffsetRespected) {
  FileChunk chunk(64, /*base_offset=*/100);
  chunk.Append("abcdef");
  EXPECT_EQ(chunk.end_offset(), 106u);
  EXPECT_EQ(*chunk.ReadAt(102, 2), "cd");
  EXPECT_EQ(chunk.ReadAt(50, 4).status().code(), StatusCode::kInvalidArgument);
  // Reads past the end return empty (EOF), not an error.
  EXPECT_EQ(*chunk.ReadAt(106, 4), "");
}

TEST(FileChunkTest, CapStopsAppends) {
  FileChunk chunk(64, 0);
  chunk.Append("data");
  chunk.Cap();
  EXPECT_TRUE(chunk.capped());
  EXPECT_EQ(chunk.Append("more"), 0u);
  EXPECT_EQ(*chunk.ReadAt(0, 4), "data");
}

TEST(FileChunkTest, SerializeRoundTrip) {
  FileChunk chunk(64, 10);
  chunk.Append("persisted-bytes");
  auto restored = FileChunk::Deserialize(64, 10, chunk.Serialize());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ((*restored)->used_bytes(), chunk.used_bytes());
  EXPECT_EQ(*(*restored)->ReadAt(10, 15), "persisted-bytes");
}

TEST(FileChunkTest, DeserializeRejectsOversizedPayload) {
  std::string big(100, 'x');
  EXPECT_FALSE(FileChunk::Deserialize(64, 0, big).ok());
}

// --- QueueSegment ------------------------------------------------------------

TEST(QueueSegmentTest, FifoOrder) {
  QueueSegment seg(1024);
  EXPECT_TRUE(seg.Enqueue("a"));
  EXPECT_TRUE(seg.Enqueue("b"));
  EXPECT_TRUE(seg.Enqueue("c"));
  EXPECT_EQ(*seg.Dequeue(), "a");
  EXPECT_EQ(*seg.Peek(), "b");
  EXPECT_EQ(*seg.Dequeue(), "b");
  EXPECT_EQ(*seg.Dequeue(), "c");
  EXPECT_EQ(seg.Dequeue().status().code(), StatusCode::kNotFound);
}

TEST(QueueSegmentTest, CapacitySealsSegment) {
  QueueSegment seg(2 * (4 + QueueSegment::kPerItemOverhead));
  EXPECT_TRUE(seg.Enqueue("aaaa"));
  EXPECT_TRUE(seg.Enqueue("bbbb"));
  std::string item = "cccc";
  EXPECT_FALSE(seg.Enqueue(std::move(item)));
  EXPECT_EQ(item, "cccc");  // Rejected item is left intact for retry.
  EXPECT_TRUE(seg.sealed());
  EXPECT_FALSE(seg.Drained());
  (void)seg.Dequeue();
  (void)seg.Dequeue();
  EXPECT_TRUE(seg.Drained());
}

TEST(QueueSegmentTest, DequeueDoesNotReopenCapacity) {
  QueueSegment seg(1 * (4 + QueueSegment::kPerItemOverhead));
  EXPECT_TRUE(seg.Enqueue("aaaa"));
  (void)seg.Dequeue();
  // Capacity is append-bounded: the drained space is not reused.
  EXPECT_FALSE(seg.Enqueue("bbbb"));
}

TEST(QueueSegmentTest, SerializeRoundTrip) {
  QueueSegment seg(1024);
  seg.Enqueue("one");
  seg.Enqueue("two");
  seg.Seal();
  auto restored = QueueSegment::Deserialize(1024, seg.Serialize());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ((*restored)->item_count(), 2u);
  EXPECT_TRUE((*restored)->sealed());
  EXPECT_EQ(*(*restored)->Dequeue(), "one");
  EXPECT_EQ(*(*restored)->Dequeue(), "two");
}

TEST(QueueSegmentTest, DeserializeRejectsGarbage) {
  EXPECT_FALSE(QueueSegment::Deserialize(1024, "nonsense").ok());
}

// --- KvShard -----------------------------------------------------------------

KvShard FullRangeShard(size_t capacity = 1 << 16) {
  return KvShard(capacity, 0, 1024, 1024);
}

TEST(KvShardTest, PutGetDelete) {
  KvShard shard = FullRangeShard();
  ASSERT_TRUE(shard.Put("key", "value").ok());
  EXPECT_EQ(*shard.Get("key"), "value");
  EXPECT_TRUE(shard.Delete("key").ok());
  EXPECT_EQ(shard.Get("key").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(shard.Delete("key").code(), StatusCode::kNotFound);
}

TEST(KvShardTest, UsedBytesAccounting) {
  KvShard shard = FullRangeShard();
  ASSERT_TRUE(shard.Put("abc", "defg").ok());
  EXPECT_EQ(shard.used_bytes(), 3 + 4 + KvShard::kPerPairOverhead);
  ASSERT_TRUE(shard.Put("abc", "xy").ok());  // Replace with shorter value.
  EXPECT_EQ(shard.used_bytes(), 3 + 2 + KvShard::kPerPairOverhead);
  ASSERT_TRUE(shard.Delete("abc").ok());
  EXPECT_EQ(shard.used_bytes(), 0u);
}

TEST(KvShardTest, RejectsKeysOutsideSlotRange) {
  // Shard owning no slots rejects everything with kStaleMetadata.
  KvShard shard(1 << 16, 0, 0, 1024);
  EXPECT_EQ(shard.Put("k", "v").code(), StatusCode::kStaleMetadata);
  EXPECT_EQ(shard.Get("k").status().code(), StatusCode::kStaleMetadata);
  EXPECT_EQ(shard.Delete("k").code(), StatusCode::kStaleMetadata);
}

TEST(KvShardTest, SplitOffMovesUpperSlots) {
  KvShard shard = FullRangeShard();
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(shard.Put("key" + std::to_string(i), "v").ok());
  }
  const size_t before = shard.pair_count();
  std::vector<std::pair<std::string, std::string>> moved;
  const size_t n = shard.SplitOff(512, &moved);
  EXPECT_EQ(n, moved.size());
  EXPECT_EQ(shard.pair_count() + moved.size(), before);
  EXPECT_EQ(shard.slot_hi(), 512u);
  // Every moved key hashes to the upper half, every kept key to the lower.
  for (const auto& [k, v] : moved) {
    (void)v;
    EXPECT_GE(KvSlotOf(k, 1024), 512u);
  }
  shard.ForEach([](std::string_view k, std::string_view v) {
    (void)v;
    EXPECT_LT(KvSlotOf(k, 1024), 512u);
  });
  // Roughly half the keys should move under a uniform hash.
  EXPECT_NEAR(static_cast<double>(n), 500.0, 120.0);
}

TEST(KvShardTest, AbsorbExtendsRange) {
  KvShard left(1 << 16, 0, 512, 1024);
  KvShard right(1 << 16, 512, 1024, 1024);
  for (int i = 0; i < 200; ++i) {
    const std::string key = "k" + std::to_string(i);
    if (KvSlotOf(key, 1024) < 512) {
      ASSERT_TRUE(left.Put(key, "v").ok());
    } else {
      ASSERT_TRUE(right.Put(key, "v").ok());
    }
  }
  std::vector<std::pair<std::string, std::string>> pairs;
  right.SplitOff(512, &pairs);  // Extract everything.
  ASSERT_TRUE(left.Absorb(512, 1024, &pairs).ok());
  EXPECT_EQ(left.slot_hi(), 1024u);
  EXPECT_EQ(left.pair_count(), 200u);
  for (int i = 0; i < 200; ++i) {
    EXPECT_TRUE(left.Get("k" + std::to_string(i)).ok()) << i;
  }
}

TEST(KvShardTest, AbsorbRejectsNonAdjacent) {
  KvShard shard(1 << 16, 0, 100, 1024);
  std::vector<std::pair<std::string, std::string>> none;
  EXPECT_EQ(shard.Absorb(500, 600, &none).code(),
            StatusCode::kInvalidArgument);
}

TEST(KvShardTest, SerializeRoundTrip) {
  KvShard shard = FullRangeShard();
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(shard.Put("k" + std::to_string(i), "v" + std::to_string(i)).ok());
  }
  auto restored =
      KvShard::Deserialize(1 << 16, 0, 1024, 1024, shard.Serialize());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ((*restored)->pair_count(), 100u);
  EXPECT_EQ((*restored)->used_bytes(), shard.used_bytes());
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(*(*restored)->Get("k" + std::to_string(i)),
              "v" + std::to_string(i));
  }
}

// --- serde -------------------------------------------------------------------

TEST(SerdeTest, RoundTrip) {
  std::string buf;
  PutU32(&buf, 7);
  PutU64(&buf, 1ULL << 40);
  PutString(&buf, "payload");
  SerdeReader r(buf);
  EXPECT_EQ(*r.ReadU32(), 7u);
  EXPECT_EQ(*r.ReadU64(), 1ULL << 40);
  EXPECT_EQ(*r.ReadString(), "payload");
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerdeTest, TruncationDetected) {
  std::string buf;
  PutString(&buf, "hello");
  // Keep the truncated buffer alive: SerdeReader holds a view, not a copy.
  const std::string truncated = buf.substr(0, buf.size() - 2);
  SerdeReader r(truncated);
  EXPECT_EQ(r.ReadString().status().code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace jiffy
