// Concurrency tests for the two-level control-plane synchronization
// (DESIGN.md §8): many client threads hammer ONE controller shard with
// renewals, partition-map fetches, block growth, two-phase splits, expiry
// scans, snapshots, and job register/deregister churn — all at once. The
// assertions check the invariants the locking scheme must preserve:
//
//   - no lost updates: partition-map versions and stats counters equal the
//     number of successful mutations (every bump happened exactly once);
//   - no double-free / no leak: after tearing everything down the allocator
//     is back to fully free, and never over-frees mid-run;
//   - snapshots taken under load are internally consistent (they Restore
//     cleanly into a fresh standby controller);
//   - operations racing DeregisterJob either succeed or fail kNotFound —
//     never crash, corrupt, or resurrect the job.
//
// Run under ThreadSanitizer via -DJIFFY_SANITIZE=thread (see CI).

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/common/clock.h"

namespace jiffy {
namespace {

constexpr int kThreads = 8;

std::unique_ptr<JiffyCluster> BigCluster() {
  JiffyCluster::Options opts;
  opts.config.num_memory_servers = 4;
  opts.config.blocks_per_server = 512;
  opts.config.block_size_bytes = 1024;
  opts.config.lease_duration = 3600 * kSecond;
  opts.config.controller_shards = 1;  // Everything lands on one shard.
  return std::make_unique<JiffyCluster>(opts);
}

// A linear chain DAG ("n0" → "n1" → ... ) so renewals have real fan-out.
std::vector<std::pair<std::string, std::vector<std::string>>> ChainDag(
    int depth) {
  std::vector<std::pair<std::string, std::vector<std::string>>> dag;
  for (int i = 0; i < depth; ++i) {
    std::vector<std::string> parents;
    if (i > 0) {
      parents.push_back("n" + std::to_string(i - 1));
    }
    dag.emplace_back("n" + std::to_string(i), std::move(parents));
  }
  return dag;
}

// Renewals and map fetches for *different jobs in the same shard* running
// from many threads: counters must account for every successful call.
TEST(ControllerConcurrencyTest, ParallelRenewalsAndFetchesAcrossJobs) {
  auto cluster = BigCluster();
  Controller* ctl = cluster->controller_shard(0);
  for (int j = 0; j < kThreads; ++j) {
    const std::string job = "job" + std::to_string(j);
    ASSERT_TRUE(ctl->RegisterJob(job).ok());
    ASSERT_TRUE(ctl->CreateHierarchy(job, ChainDag(8)).ok());
    ASSERT_TRUE(ctl->InitDataStructure(job, "n0", DsType::kKvStore, 0).ok());
  }
  const uint64_t base_renewals = ctl->Stats().lease_renewals;

  std::atomic<uint64_t> renew_ok{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const std::string job = "job" + std::to_string(t);
      for (int i = 0; i < 2000; ++i) {
        if (i % 4 == 0) {
          auto map = ctl->GetPartitionMap(job, "n0");
          ASSERT_TRUE(map.ok()) << map.status();
          ASSERT_GE(map->version, 1u);
        } else {
          const std::string prefix = "n" + std::to_string(i % 8);
          auto renewed = ctl->RenewLease(job, prefix);
          ASSERT_TRUE(renewed.ok()) << renewed.status();
          // Chain DAG: prefix + parent + all descendants = whole chain tail.
          ASSERT_GE(*renewed, 1u);
          renew_ok.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  // Exactly one lease_renewals bump per successful renewal — none lost to
  // racy read-modify-write.
  EXPECT_EQ(ctl->Stats().lease_renewals - base_renewals, renew_ok.load());
}

// Concurrent growth of partition maps (AddBlock) plus two-phase splits
// (AllocateUnmapped → CommitSplit) on per-thread prefixes of one job, with
// an expiry-scan thread sweeping throughout. Versions must count every
// successful mutation exactly once, and the allocator must balance.
TEST(ControllerConcurrencyTest, NoLostVersionBumpsUnderGrowthAndSplits) {
  auto cluster = BigCluster();
  Controller* ctl = cluster->controller_shard(0);
  auto allocator = ctl->allocator();
  const uint32_t total_blocks = allocator->total_count();

  ASSERT_TRUE(ctl->RegisterJob("job").ok());
  for (int t = 0; t < kThreads; ++t) {
    const std::string prefix = "p" + std::to_string(t);
    ASSERT_TRUE(ctl->CreateAddrPrefix("job", prefix, {}).ok());
    ASSERT_TRUE(
        ctl->InitDataStructure("job", prefix, DsType::kKvStore, 0).ok());
  }

  std::atomic<bool> stop{false};
  std::thread scanner([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      ctl->RunExpiryScan();  // Leases are hours long: finds nothing, but
    }                        // interleaves with every job mutex.
  });

  std::vector<uint64_t> mutations(kThreads, 0);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const std::string prefix = "p" + std::to_string(t);
      uint64_t ok = 0;
      for (int i = 0; i < 150; ++i) {
        if (i % 3 == 0) {
          // Two-phase split: stage an unmapped block, then publish it.
          auto staged = ctl->AllocateUnmapped("job", prefix, 0, 0);
          ASSERT_TRUE(staged.ok()) << staged.status();
          if (i % 6 == 0) {
            PartitionEntry entry;
            entry.block = *staged;
            entry.lo = 1000 + i;
            entry.hi = 1001 + i;
            auto map = ctl->GetPartitionMap("job", prefix);
            ASSERT_TRUE(map.ok());
            const PartitionEntry& victim = map->entries.front();
            ASSERT_TRUE(ctl->CommitSplit("job", prefix, victim.block,
                                         victim.lo, victim.hi, entry)
                            .ok());
            ok++;
          } else {
            // Move failed: return the staged block.
            ASSERT_TRUE(ctl->AbortUnmapped(*staged).ok());
          }
        } else {
          auto added = ctl->AddBlock("job", prefix, i, i + 1);
          ASSERT_TRUE(added.ok()) << added.status();
          ok++;
        }
      }
      mutations[t] = ok;
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  stop.store(true);
  scanner.join();

  for (int t = 0; t < kThreads; ++t) {
    const std::string prefix = "p" + std::to_string(t);
    auto map = ctl->GetPartitionMap("job", prefix);
    ASSERT_TRUE(map.ok());
    // InitDataStructure leaves version 1; each successful mutation bumps it
    // exactly once.
    EXPECT_EQ(map->version, 1 + mutations[t]) << prefix;
  }
  // Every block is either mapped under the job or back on the free list.
  EXPECT_EQ(allocator->free_count() + allocator->allocated_count(),
            total_blocks);
  ASSERT_TRUE(ctl->DeregisterJob("job").ok());
  EXPECT_EQ(allocator->free_count(), total_blocks);
  EXPECT_EQ(allocator->allocated_count(), 0u);
}

// Snapshots taken while other jobs mutate must always parse and Restore
// into a fresh standby controller: per-job quiescing may omit in-flight
// registrations but can never emit a torn job record.
TEST(ControllerConcurrencyTest, SnapshotIsConsistentUnderLoad) {
  auto cluster = BigCluster();
  Controller* ctl = cluster->controller_shard(0);

  for (int j = 0; j < 4; ++j) {
    const std::string job = "job" + std::to_string(j);
    ASSERT_TRUE(ctl->RegisterJob(job).ok());
    ASSERT_TRUE(ctl->CreateHierarchy(job, ChainDag(6)).ok());
    ASSERT_TRUE(ctl->InitDataStructure(job, "n0", DsType::kFile, 4096).ok());
  }

  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      const std::string job = "job" + std::to_string(t);
      int i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        (void)ctl->RenewLease(job, "n" + std::to_string(i % 6));
        (void)ctl->AddBlock("job" + std::to_string(t), "n0", i, i + 1);
        // Churn the job table too: snapshots race registrations.
        const std::string churn = "churn" + std::to_string(t);
        (void)ctl->RegisterJob(churn);
        (void)ctl->DeregisterJob(churn);
        ++i;
      }
    });
  }

  SimClock standby_clock;
  for (int round = 0; round < 50; ++round) {
    const std::string snap = ctl->Snapshot();
    Controller standby(ctl->config(), &standby_clock,
                       std::make_shared<BlockAllocator>(4, 512),
                       /*hooks=*/nullptr, /*backing=*/nullptr);
    Status st = standby.Restore(snap);
    ASSERT_TRUE(st.ok()) << "round " << round << ": " << st;
    // The four long-lived jobs were registered before the load started, so
    // every snapshot must contain them whole.
    for (int j = 0; j < 4; ++j) {
      const std::string job = "job" + std::to_string(j);
      ASSERT_TRUE(standby.HasJob(job)) << "round " << round;
      auto map = standby.GetPartitionMap(job, "n0");
      ASSERT_TRUE(map.ok()) << "round " << round << ": " << map.status();
      ASSERT_GE(map->entries.size(), 4u);
    }
  }
  stop.store(true);
  for (auto& th : threads) {
    th.join();
  }
}

// Requests racing DeregisterJob: every op either succeeds or fails with
// kNotFound (the job vanished) — and a deregistered job's blocks are all
// back on the free list even with renewals/growth in flight.
TEST(ControllerConcurrencyTest, DeregistrationRacesInFlightOps) {
  auto cluster = BigCluster();
  Controller* ctl = cluster->controller_shard(0);
  auto allocator = ctl->allocator();
  const uint32_t total_blocks = allocator->total_count();

  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads - 1; ++t) {
    workers.emplace_back([&, t] {
      int i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const std::string prefix = "n" + std::to_string((t + i++) % 6);
        auto renewed = ctl->RenewLease("victim", prefix);
        if (!renewed.ok()) {
          ASSERT_EQ(renewed.status().code(), StatusCode::kNotFound)
              << renewed.status();
        }
        auto added = ctl->AddBlock("victim", "n0", i, i + 1);
        if (!added.ok()) {
          // kNotFound: job or prefix gone. kFailedPrecondition: the fresh
          // incarnation has no data structure yet. kOutOfMemory: workers
          // drained the pool before this round's teardown released it.
          ASSERT_TRUE(added.status().code() == StatusCode::kNotFound ||
                      added.status().code() ==
                          StatusCode::kFailedPrecondition ||
                      added.status().code() == StatusCode::kOutOfMemory)
              << added.status();
        }
      }
    });
  }

  for (int round = 0; round < 60; ++round) {
    ASSERT_TRUE(ctl->RegisterJob("victim").ok());
    ASSERT_TRUE(ctl->CreateHierarchy("victim", ChainDag(6)).ok());
    ASSERT_TRUE(
        ctl->InitDataStructure("victim", "n0", DsType::kKvStore, 0).ok());
    // Let workers pile on, then tear the job down mid-flight.
    std::this_thread::yield();
    ASSERT_TRUE(ctl->DeregisterJob("victim").ok());
    EXPECT_FALSE(ctl->HasJob("victim"));
  }
  stop.store(true);
  for (auto& th : workers) {
    th.join();
  }
  // Nothing leaked, nothing double-freed.
  EXPECT_EQ(allocator->free_count(), total_blocks);
  EXPECT_EQ(allocator->allocated_count(), 0u);
}

// The shared allocator itself under cross-job fire: concurrent AllocateN
// bursts (all-or-nothing) against single Allocate/Free churn, with a server
// dying mid-run. Accounting must stay exact.
TEST(ControllerConcurrencyTest, ShardedAllocatorCrossJobChurn) {
  BlockAllocator allocator(4, 256);
  const uint32_t total = allocator.total_count();

  std::vector<std::thread> threads;
  std::atomic<uint32_t> outstanding{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const std::string owner = "job" + std::to_string(t) + "/p";
      std::vector<BlockId> held;
      for (int i = 0; i < 400; ++i) {
        if (i % 7 == 0) {
          auto batch = allocator.AllocateN(owner, 4);
          if (batch.ok()) {
            held.insert(held.end(), batch->begin(), batch->end());
          }
        } else if (i % 2 == 0 || held.empty()) {
          auto id = allocator.Allocate(owner);
          if (id.ok()) {
            held.push_back(*id);
          }
        } else {
          Status st = allocator.Free(held.back());
          held.pop_back();
          // A Free may hit a server marked dead mid-run (silently retired),
          // but never a double-free.
          ASSERT_NE(st.code(), StatusCode::kInvalidArgument) << st;
        }
      }
      ASSERT_EQ(allocator.OwnerCount(owner), held.size());
      outstanding.fetch_add(static_cast<uint32_t>(held.size()));
      for (const BlockId& id : held) {
        allocator.Free(id);
      }
    });
  }
  // Kill a server while the churn runs.
  allocator.MarkServerDead(2);
  for (auto& th : threads) {
    th.join();
  }
  ASSERT_GT(outstanding.load(), 0u);
  // Server 2's surviving blocks left the pool; the other three servers'
  // blocks are all free again.
  EXPECT_EQ(allocator.allocated_count() + allocator.free_count(), total);
  EXPECT_GE(allocator.free_count(), 3u * 256u);
  EXPECT_LE(allocator.peak_allocated(), total);
}

}  // namespace
}  // namespace jiffy
