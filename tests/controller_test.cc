// Control-plane tests: job lifecycle, prefix creation, data-structure
// initialization, partition-map maintenance, lease expiry with flush to the
// persistent tier, and flush/load (§4.2.1, Table 1). Runs against a real
// cluster with a SimClock so expiry is driven deterministically.

#include <gtest/gtest.h>

#include "src/cluster/cluster.h"
#include "src/common/clock.h"
#include "src/ds/file_content.h"

namespace jiffy {
namespace {

class ControllerTest : public ::testing::Test {
 protected:
  ControllerTest() {
    JiffyCluster::Options opts;
    opts.config.num_memory_servers = 2;
    opts.config.blocks_per_server = 8;
    opts.config.block_size_bytes = 1024;
    opts.config.lease_duration = 1 * kSecond;
    opts.clock = &clock_;
    cluster_ = std::make_unique<JiffyCluster>(opts);
    ctl_ = cluster_->controller_shard(0);
  }

  SimClock clock_;
  std::unique_ptr<JiffyCluster> cluster_;
  Controller* ctl_;
};

TEST_F(ControllerTest, RegisterDeregisterJob) {
  EXPECT_TRUE(ctl_->RegisterJob("job1").ok());
  EXPECT_TRUE(ctl_->HasJob("job1"));
  EXPECT_EQ(ctl_->RegisterJob("job1").code(), StatusCode::kAlreadyExists);
  EXPECT_TRUE(ctl_->DeregisterJob("job1").ok());
  EXPECT_FALSE(ctl_->HasJob("job1"));
  EXPECT_EQ(ctl_->DeregisterJob("job1").code(), StatusCode::kNotFound);
}

TEST_F(ControllerTest, RejectsBadJobId) {
  EXPECT_EQ(ctl_->RegisterJob("bad job").code(), StatusCode::kInvalidArgument);
}

TEST_F(ControllerTest, CreatePrefixAndValidatePath) {
  ASSERT_TRUE(ctl_->RegisterJob("j").ok());
  ASSERT_TRUE(ctl_->CreateAddrPrefix("j", "map", {}).ok());
  ASSERT_TRUE(ctl_->CreateAddrPrefix("j", "reduce", {"map"}).ok());
  EXPECT_TRUE(ctl_->ValidatePath(*AddressPath::Parse("/j/map/reduce")).ok());
  EXPECT_FALSE(ctl_->ValidatePath(*AddressPath::Parse("/j/reduce/map")).ok());
  EXPECT_EQ(ctl_->ValidatePath(*AddressPath::Parse("/nope/map")).code(),
            StatusCode::kNotFound);
}

TEST_F(ControllerTest, InitDataStructureAllocatesBlocks) {
  ASSERT_TRUE(ctl_->RegisterJob("j").ok());
  ASSERT_TRUE(ctl_->CreateAddrPrefix("j", "t", {}).ok());
  // 3000 bytes @ 1024-byte blocks → 3 blocks.
  auto map = ctl_->InitDataStructure("j", "t", DsType::kFile, 3000);
  ASSERT_TRUE(map.ok());
  EXPECT_EQ(map->entries.size(), 3u);
  EXPECT_EQ(map->version, 1u);
  EXPECT_EQ(map->entries[0].lo, 0u);
  EXPECT_EQ(map->entries[0].hi, 1024u);
  EXPECT_EQ(map->entries[2].lo, 2048u);
  EXPECT_EQ(ctl_->AllocatedBlocks(), 3u);
  // Double init is rejected.
  EXPECT_EQ(ctl_->InitDataStructure("j", "t", DsType::kFile, 0).status().code(),
            StatusCode::kAlreadyExists);
}

TEST_F(ControllerTest, KvInitSplitsSlotSpace) {
  ASSERT_TRUE(ctl_->RegisterJob("j").ok());
  ASSERT_TRUE(ctl_->CreateAddrPrefix("j", "kv", {}).ok());
  auto map = ctl_->InitDataStructure("j", "kv", DsType::kKvStore, 2 * 1024);
  ASSERT_TRUE(map.ok());
  ASSERT_EQ(map->entries.size(), 2u);
  EXPECT_EQ(map->entries[0].lo, 0u);
  EXPECT_EQ(map->entries[0].hi, 512u);
  EXPECT_EQ(map->entries[1].lo, 512u);
  EXPECT_EQ(map->entries[1].hi, 1024u);
}

TEST_F(ControllerTest, AddRemoveBlockBumpsVersion) {
  ASSERT_TRUE(ctl_->RegisterJob("j").ok());
  ASSERT_TRUE(ctl_->CreateAddrPrefix("j", "f", {}).ok());
  ASSERT_TRUE(ctl_->InitDataStructure("j", "f", DsType::kFile, 0).ok());
  auto added = ctl_->AddBlock("j", "f", 1024, 2048);
  ASSERT_TRUE(added.ok());
  auto map = ctl_->GetPartitionMap("j", "f");
  ASSERT_TRUE(map.ok());
  EXPECT_EQ(map->entries.size(), 2u);
  EXPECT_EQ(map->version, 2u);
  ASSERT_TRUE(ctl_->RemoveBlock("j", "f", *added).ok());
  map = ctl_->GetPartitionMap("j", "f");
  EXPECT_EQ(map->entries.size(), 1u);
  EXPECT_EQ(map->version, 3u);
  EXPECT_EQ(ctl_->RemoveBlock("j", "f", *added).code(), StatusCode::kNotFound);
}

TEST_F(ControllerTest, OutOfMemoryWhenPoolExhausted) {
  ASSERT_TRUE(ctl_->RegisterJob("j").ok());
  ASSERT_TRUE(ctl_->CreateAddrPrefix("j", "f", {}).ok());
  // Pool has 16 blocks total.
  auto map = ctl_->InitDataStructure("j", "f", DsType::kFile, 16 * 1024);
  ASSERT_TRUE(map.ok());
  EXPECT_EQ(ctl_->AddBlock("j", "f", 16 * 1024, 17 * 1024).status().code(),
            StatusCode::kOutOfMemory);
}

TEST_F(ControllerTest, LeaseExpiryFlushesAndReclaims) {
  ASSERT_TRUE(ctl_->RegisterJob("j").ok());
  CreateOptions opts;
  opts.init_ds = true;
  opts.ds_type = DsType::kFile;
  ASSERT_TRUE(ctl_->CreateAddrPrefix("j", "t", {}, opts).ok());
  EXPECT_EQ(ctl_->AllocatedBlocks(), 1u);
  // Write something so the flush has content.
  Block* block = cluster_->ResolveBlock(
      ctl_->GetPartitionMap("j", "t")->entries[0].block);
  {
    Block::OpLock lock(*block);
    auto* chunk = dynamic_cast<FileChunk*>(block->content());
    ASSERT_NE(chunk, nullptr);
    chunk->Append("ephemeral-state");
  }
  // Within the lease: no reclamation.
  clock_.AdvanceBy(500 * kMillisecond);
  EXPECT_EQ(ctl_->RunExpiryScan(), 0u);
  // Past the lease: flushed and reclaimed.
  clock_.AdvanceBy(600 * kMillisecond);
  EXPECT_EQ(ctl_->RunExpiryScan(), 1u);
  EXPECT_EQ(ctl_->AllocatedBlocks(), 0u);
  EXPECT_TRUE(*ctl_->IsExpired("j", "t"));
  EXPECT_EQ(ctl_->GetPartitionMap("j", "t").status().code(),
            StatusCode::kLeaseExpired);
  // The data survived on the persistent tier.
  EXPECT_TRUE(cluster_->backing()->Exists("jiffy/j/t/0"));
}

TEST_F(ControllerTest, RenewalPreventsExpiry) {
  ASSERT_TRUE(ctl_->RegisterJob("j").ok());
  CreateOptions opts;
  opts.init_ds = true;
  ASSERT_TRUE(ctl_->CreateAddrPrefix("j", "t", {}, opts).ok());
  for (int i = 0; i < 5; ++i) {
    clock_.AdvanceBy(800 * kMillisecond);
    ASSERT_TRUE(ctl_->RenewLease("j", "t").ok());
    EXPECT_EQ(ctl_->RunExpiryScan(), 0u);
  }
  EXPECT_EQ(ctl_->AllocatedBlocks(), 1u);
}

TEST_F(ControllerTest, LoadRevivesExpiredPrefix) {
  ASSERT_TRUE(ctl_->RegisterJob("j").ok());
  CreateOptions opts;
  opts.init_ds = true;
  ASSERT_TRUE(ctl_->CreateAddrPrefix("j", "t", {}, opts).ok());
  auto map = ctl_->GetPartitionMap("j", "t");
  Block* block = cluster_->ResolveBlock(map->entries[0].block);
  {
    Block::OpLock lock(*block);
    dynamic_cast<FileChunk*>(block->content())->Append("revive-me");
  }
  clock_.AdvanceBy(2 * kSecond);
  ASSERT_EQ(ctl_->RunExpiryScan(), 1u);
  ASSERT_TRUE(ctl_->LoadAddrPrefix("j", "t", "jiffy/j/t").ok());
  EXPECT_FALSE(*ctl_->IsExpired("j", "t"));
  auto revived = ctl_->GetPartitionMap("j", "t");
  ASSERT_TRUE(revived.ok());
  ASSERT_EQ(revived->entries.size(), 1u);
  Block* nb = cluster_->ResolveBlock(revived->entries[0].block);
  Block::OpLock lock(*nb);
  auto* chunk = dynamic_cast<FileChunk*>(nb->content());
  ASSERT_NE(chunk, nullptr);
  EXPECT_EQ(*chunk->ReadAt(0, 9), "revive-me");
}

TEST_F(ControllerTest, ExplicitFlushKeepsBlocks) {
  ASSERT_TRUE(ctl_->RegisterJob("j").ok());
  CreateOptions opts;
  opts.init_ds = true;
  ASSERT_TRUE(ctl_->CreateAddrPrefix("j", "t", {}, opts).ok());
  ASSERT_TRUE(ctl_->FlushAddrPrefix("j", "t", "checkpoints/t").ok());
  EXPECT_EQ(ctl_->AllocatedBlocks(), 1u);  // Checkpoint, not eviction.
  EXPECT_TRUE(cluster_->backing()->Exists("checkpoints/t/0"));
}

TEST_F(ControllerTest, DeregisterReleasesBlocks) {
  ASSERT_TRUE(ctl_->RegisterJob("j").ok());
  CreateOptions opts;
  opts.init_ds = true;
  opts.initial_capacity_bytes = 4 * 1024;
  ASSERT_TRUE(ctl_->CreateAddrPrefix("j", "t", {}, opts).ok());
  EXPECT_EQ(ctl_->AllocatedBlocks(), 4u);
  ASSERT_TRUE(ctl_->DeregisterJob("j").ok());
  EXPECT_EQ(ctl_->AllocatedBlocks(), 0u);
}

TEST_F(ControllerTest, StatsAreTracked) {
  ASSERT_TRUE(ctl_->RegisterJob("j").ok());
  CreateOptions opts;
  opts.init_ds = true;
  ASSERT_TRUE(ctl_->CreateAddrPrefix("j", "t", {}, opts).ok());
  ASSERT_TRUE(ctl_->RenewLease("j", "t").ok());
  clock_.AdvanceBy(2 * kSecond);
  ctl_->RunExpiryScan();
  const ControllerStats stats = ctl_->Stats();
  EXPECT_GE(stats.ops, 4u);
  EXPECT_EQ(stats.lease_renewals, 1u);
  EXPECT_EQ(stats.expiry_scans, 1u);
  EXPECT_EQ(stats.prefixes_expired, 1u);
  EXPECT_EQ(stats.blocks_allocated, 1u);
  EXPECT_EQ(stats.blocks_reclaimed, 1u);
}

TEST_F(ControllerTest, MetadataBytesMatchPaperAccounting) {
  ASSERT_TRUE(ctl_->RegisterJob("j").ok());
  CreateOptions opts;
  opts.init_ds = true;
  opts.initial_capacity_bytes = 2 * 1024;
  ASSERT_TRUE(ctl_->CreateAddrPrefix("j", "t", {}, opts).ok());
  // 1 task × 64 B + 2 blocks × 8 B (§6.4).
  EXPECT_EQ(*ctl_->JobMetadataBytes("j"), 64u + 16u);
}

}  // namespace
}  // namespace jiffy
