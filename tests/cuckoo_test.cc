// Unit + property tests for the cuckoo hash map backing KV shards (§5.3).

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "src/common/random.h"
#include "src/ds/cuckoo_hash.h"

namespace jiffy {
namespace {

TEST(CuckooTest, PutGetErase) {
  CuckooHashMap map;
  EXPECT_FALSE(map.Put("k1", "v1").has_value());
  EXPECT_EQ(map.Get("k1").value(), "v1");
  EXPECT_TRUE(map.Contains("k1"));
  EXPECT_EQ(map.size(), 1u);
  auto erased = map.Erase("k1");
  ASSERT_TRUE(erased.has_value());
  EXPECT_EQ(*erased, 4u);  // "k1" + "v1".
  EXPECT_FALSE(map.Contains("k1"));
  EXPECT_EQ(map.size(), 0u);
}

TEST(CuckooTest, PutReplaceReturnsOldSize) {
  CuckooHashMap map;
  map.Put("key", "short");
  auto old = map.Put("key", "a-much-longer-value");
  ASSERT_TRUE(old.has_value());
  EXPECT_EQ(*old, 5u);
  EXPECT_EQ(map.Get("key").value(), "a-much-longer-value");
  EXPECT_EQ(map.size(), 1u);
}

TEST(CuckooTest, GetMissing) {
  CuckooHashMap map;
  EXPECT_FALSE(map.Get("missing").has_value());
  EXPECT_FALSE(map.Erase("missing").has_value());
}

TEST(CuckooTest, GrowsPastInitialCapacity) {
  CuckooHashMap map(nullptr, 2);  // 2 buckets × 4 slots = 8 slots before pressure.
  for (int i = 0; i < 1000; ++i) {
    map.Put("key" + std::to_string(i), "value" + std::to_string(i));
  }
  EXPECT_EQ(map.size(), 1000u);
  for (int i = 0; i < 1000; ++i) {
    auto v = map.Get("key" + std::to_string(i));
    ASSERT_TRUE(v.has_value()) << i;
    EXPECT_EQ(*v, "value" + std::to_string(i));
  }
}

TEST(CuckooTest, ForEachVisitsAll) {
  CuckooHashMap map;
  for (int i = 0; i < 50; ++i) {
    map.Put("k" + std::to_string(i), "v");
  }
  size_t visited = 0;
  map.ForEach([&](std::string_view k, std::string_view v) {
    EXPECT_FALSE(k.empty());
    EXPECT_EQ(v, "v");
    visited++;
  });
  EXPECT_EQ(visited, 50u);
}

TEST(CuckooTest, ExtractIfRemovesMatching) {
  CuckooHashMap map;
  for (int i = 0; i < 100; ++i) {
    map.Put("k" + std::to_string(i), std::to_string(i));
  }
  std::map<std::string, std::string> extracted;
  const size_t n = map.ExtractIf(
      [](std::string_view k) { return k.back() == '7'; },
      [&](std::string_view k, std::string_view v) {
        extracted.emplace(std::string(k), std::string(v));
      });
  EXPECT_EQ(n, 10u);  // k7, k17, ..., k97.
  EXPECT_EQ(map.size(), 90u);
  EXPECT_TRUE(extracted.count("k7") == 1);
  EXPECT_FALSE(map.Contains("k7"));
  EXPECT_TRUE(map.Contains("k8"));
}

// Property: the map agrees with std::map under a random op sequence.
class CuckooPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CuckooPropertyTest, AgreesWithReferenceModel) {
  Rng rng(GetParam());
  CuckooHashMap map(nullptr, 4);
  std::map<std::string, std::string> model;
  for (int i = 0; i < 20000; ++i) {
    const std::string key = "key" + std::to_string(rng.NextBelow(500));
    const int op = static_cast<int>(rng.NextBelow(3));
    if (op == 0) {
      const std::string value = "v" + std::to_string(rng.Next() % 100000);
      map.Put(key, value);
      model[key] = value;
    } else if (op == 1) {
      auto got = map.Get(key);
      auto it = model.find(key);
      if (it == model.end()) {
        EXPECT_FALSE(got.has_value()) << key;
      } else {
        ASSERT_TRUE(got.has_value()) << key;
        EXPECT_EQ(*got, it->second);
      }
    } else {
      const bool erased = map.Erase(key).has_value();
      EXPECT_EQ(erased, model.erase(key) > 0) << key;
    }
  }
  EXPECT_EQ(map.size(), model.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CuckooPropertyTest,
                         ::testing::Values(1, 2, 3, 17, 99));

TEST(CuckooTest, ViewsStableAcrossRehashAndKicks) {
  CuckooHashMap map(nullptr, 2);
  map.Put("pinned-key", "pinned-value");
  const std::string_view v = map.Get("pinned-key").value();
  const char* data = v.data();
  // Force many rehashes and kick chains; the record bytes live in the arena
  // and never move, so the view stays byte-identical.
  for (int i = 0; i < 5000; ++i) {
    map.Put("filler" + std::to_string(i), "x");
  }
  EXPECT_EQ(v, "pinned-value");
  EXPECT_EQ(v.data(), data);
}

TEST(CuckooTest, OverwriteInPlaceWhenUnpinned) {
  auto arena = std::make_shared<SlabArena>();
  CuckooHashMap map(arena);
  const std::string value(1024, 'v');
  // With no pins outstanding, same-size overwrites rewrite the record's
  // bytes in place: no garbage, no footprint growth, stable data pointer.
  map.Put("key", value);
  const char* data = map.Get("key").value().data();
  for (int round = 0; round < 200; ++round) {
    map.Put("key", std::string(1024, 'a' + (round % 26)));
  }
  EXPECT_EQ(map.GarbageRatio(), 0.0);
  EXPECT_EQ(map.Get("key").value(), std::string(1024, 'a' + (199 % 26)));
  EXPECT_EQ(map.Get("key").value().data(), data);
  EXPECT_LE(arena->stored_bytes(), 2048u);
}

TEST(CuckooTest, OverwritesAccrueGarbageAndCompactionReclaims) {
  auto arena = std::make_shared<SlabArena>();
  CuckooHashMap map(arena);
  const std::string value(1024, 'v');
  // A pinned reader forces the append path: its views must stay immutable,
  // so every overwrite leaves the old bytes behind as garbage.
  ArenaPin pin(arena);
  for (int round = 0; round < 200; ++round) {
    for (int i = 0; i < 8; ++i) {
      map.Put("key" + std::to_string(i), value);
    }
  }
  // 199 of 200 rounds are dead bytes.
  EXPECT_GT(map.GarbageRatio(), 0.9);
  pin.Release();
  map.CompactArena();
  EXPECT_EQ(map.GarbageRatio(), 0.0);
  EXPECT_LT(arena->live_bytes(), 16u * 1024u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(map.Get("key" + std::to_string(i)).value(), value);
  }
}

TEST(CuckooTest, LoadFactorReasonableAfterHeavyInsert) {
  CuckooHashMap map(nullptr, 2);
  for (int i = 0; i < 5000; ++i) {
    map.Put(std::to_string(i), "x");
  }
  // Cuckoo with 4-way buckets sustains high load; growth should not leave
  // the table nearly empty either.
  EXPECT_GT(map.LoadFactor(), 0.15);
  EXPECT_LE(map.LoadFactor(), 1.0);
}

}  // namespace
}  // namespace jiffy
