// Unit + property tests for the cuckoo hash map backing KV shards (§5.3).

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "src/common/random.h"
#include "src/ds/cuckoo_hash.h"

namespace jiffy {
namespace {

TEST(CuckooTest, PutGetErase) {
  CuckooHashMap map;
  EXPECT_FALSE(map.Put("k1", "v1").has_value());
  EXPECT_EQ(map.Get("k1").value(), "v1");
  EXPECT_TRUE(map.Contains("k1"));
  EXPECT_EQ(map.size(), 1u);
  auto erased = map.Erase("k1");
  ASSERT_TRUE(erased.has_value());
  EXPECT_EQ(*erased, 4u);  // "k1" + "v1".
  EXPECT_FALSE(map.Contains("k1"));
  EXPECT_EQ(map.size(), 0u);
}

TEST(CuckooTest, PutReplaceReturnsOldSize) {
  CuckooHashMap map;
  map.Put("key", "short");
  auto old = map.Put("key", "a-much-longer-value");
  ASSERT_TRUE(old.has_value());
  EXPECT_EQ(*old, 5u);
  EXPECT_EQ(map.Get("key").value(), "a-much-longer-value");
  EXPECT_EQ(map.size(), 1u);
}

TEST(CuckooTest, GetMissing) {
  CuckooHashMap map;
  EXPECT_FALSE(map.Get("missing").has_value());
  EXPECT_FALSE(map.Erase("missing").has_value());
}

TEST(CuckooTest, GrowsPastInitialCapacity) {
  CuckooHashMap map(2);  // 2 buckets × 4 slots = 8 entries before pressure.
  for (int i = 0; i < 1000; ++i) {
    map.Put("key" + std::to_string(i), "value" + std::to_string(i));
  }
  EXPECT_EQ(map.size(), 1000u);
  for (int i = 0; i < 1000; ++i) {
    auto v = map.Get("key" + std::to_string(i));
    ASSERT_TRUE(v.has_value()) << i;
    EXPECT_EQ(*v, "value" + std::to_string(i));
  }
}

TEST(CuckooTest, ForEachVisitsAll) {
  CuckooHashMap map;
  for (int i = 0; i < 50; ++i) {
    map.Put("k" + std::to_string(i), "v");
  }
  size_t visited = 0;
  map.ForEach([&](const std::string& k, const std::string& v) {
    EXPECT_FALSE(k.empty());
    EXPECT_EQ(v, "v");
    visited++;
  });
  EXPECT_EQ(visited, 50u);
}

TEST(CuckooTest, ExtractIfRemovesMatching) {
  CuckooHashMap map;
  for (int i = 0; i < 100; ++i) {
    map.Put("k" + std::to_string(i), std::to_string(i));
  }
  std::map<std::string, std::string> extracted;
  const size_t n = map.ExtractIf(
      [](const std::string& k) { return k.back() == '7'; },
      [&](std::string&& k, std::string&& v) {
        extracted.emplace(std::move(k), std::move(v));
      });
  EXPECT_EQ(n, 10u);  // k7, k17, ..., k97.
  EXPECT_EQ(map.size(), 90u);
  EXPECT_TRUE(extracted.count("k7") == 1);
  EXPECT_FALSE(map.Contains("k7"));
  EXPECT_TRUE(map.Contains("k8"));
}

// Property: the map agrees with std::map under a random op sequence.
class CuckooPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CuckooPropertyTest, AgreesWithReferenceModel) {
  Rng rng(GetParam());
  CuckooHashMap map(4);
  std::map<std::string, std::string> model;
  for (int i = 0; i < 20000; ++i) {
    const std::string key = "key" + std::to_string(rng.NextBelow(500));
    const int op = static_cast<int>(rng.NextBelow(3));
    if (op == 0) {
      const std::string value = "v" + std::to_string(rng.Next() % 100000);
      map.Put(key, value);
      model[key] = value;
    } else if (op == 1) {
      auto got = map.Get(key);
      auto it = model.find(key);
      if (it == model.end()) {
        EXPECT_FALSE(got.has_value()) << key;
      } else {
        ASSERT_TRUE(got.has_value()) << key;
        EXPECT_EQ(*got, it->second);
      }
    } else {
      const bool erased = map.Erase(key).has_value();
      EXPECT_EQ(erased, model.erase(key) > 0) << key;
    }
  }
  EXPECT_EQ(map.size(), model.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CuckooPropertyTest,
                         ::testing::Values(1, 2, 3, 17, 99));

TEST(CuckooTest, LoadFactorReasonableAfterHeavyInsert) {
  CuckooHashMap map(2);
  for (int i = 0; i < 5000; ++i) {
    map.Put(std::to_string(i), "x");
  }
  // Cuckoo with 4-way buckets sustains high load; growth should not leave
  // the table nearly empty either.
  EXPECT_GT(map.LoadFactor(), 0.15);
  EXPECT_LE(map.LoadFactor(), 1.0);
}

}  // namespace
}  // namespace jiffy
