// Tests for the custom data-structure extension point (Fig 6 / Table 2
// "Custom data structures"), exercised through the SharedLog sample type.

#include <gtest/gtest.h>

#include "src/client/jiffy_client.h"
#include "src/ds/shared_log.h"

namespace jiffy {
namespace {

// Append helper handling the cap-and-grow dance when a block fills.
Result<uint64_t> LogAppend(CustomDsClient* log, const std::string& record) {
  for (int attempt = 0; attempt < 16; ++attempt) {
    auto r = log->WriteOp("append", {record});
    if (r.ok()) {
      return std::stoull(*r);
    }
    if (r.status().code() != StatusCode::kOutOfMemory) {
      return r.status();
    }
    // Block exhausted: seal it at the true tail (so stale clients bounce),
    // then cap the map entry and grow by a fresh range.
    auto tail = log->WriteOp("seal", {});
    if (!tail.ok()) {
      return tail.status();
    }
    const uint64_t t = std::stoull(*tail);
    JIFFY_RETURN_IF_ERROR(
        log->CapAndGrow(t, t, t + kSharedLogSeqsPerBlock));
  }
  return Unavailable("log append kept failing");
}

class CustomDsTest : public ::testing::Test {
 protected:
  CustomDsTest() {
    RegisterSharedLog();
    JiffyCluster::Options opts;
    opts.config.num_memory_servers = 4;
    opts.config.blocks_per_server = 32;
    opts.config.block_size_bytes = 8 << 10;
    opts.config.lease_duration = 3600 * kSecond;
    cluster_ = std::make_unique<JiffyCluster>(opts);
    client_ = std::make_unique<JiffyClient>(cluster_.get());
    EXPECT_TRUE(client_->RegisterJob("job").ok());
    EXPECT_TRUE(client_->CreateAddrPrefix("/job/log", {}).ok());
  }

  std::unique_ptr<JiffyCluster> cluster_;
  std::unique_ptr<JiffyClient> client_;
};

TEST_F(CustomDsTest, UnregisteredTypeRejected) {
  EXPECT_EQ(client_->OpenCustom("/job/log", "no-such-type").status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(CustomDsTest, AppendAssignsMonotonicSequences) {
  auto log = client_->OpenCustom("/job/log", "sharedlog");
  ASSERT_TRUE(log.ok()) << log.status();
  for (uint64_t i = 0; i < 20; ++i) {
    auto seq = LogAppend(log->get(), "record" + std::to_string(i));
    ASSERT_TRUE(seq.ok()) << seq.status();
    EXPECT_EQ(*seq, i);
  }
  EXPECT_EQ(*(*log)->ReadOp("read", {"7"}), "record7");
  EXPECT_EQ(*(*log)->ReadOp("read", {"19"}), "record19");
}

TEST_F(CustomDsTest, TypeMismatchDetected) {
  ASSERT_TRUE(client_->OpenCustom("/job/log", "sharedlog").ok());
  EXPECT_EQ(client_->OpenKv("/job/log").status().code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(CustomDsTest, GrowsAcrossBlocksAndRoutesReads) {
  auto log = client_->OpenCustom("/job/log", "sharedlog");
  ASSERT_TRUE(log.ok());
  // Write enough records to force several block-range exhaustions. The
  // initial block covers a byte-sized range but only holds ~8 KiB of
  // records, so CapAndGrow fires on byte exhaustion too.
  const int n = 600;
  for (int i = 0; i < n; ++i) {
    auto seq = LogAppend(log->get(), "payload-" + std::to_string(i) +
                                         std::string(40, 'L'));
    ASSERT_TRUE(seq.ok()) << i << ": " << seq.status();
    ASSERT_EQ(*seq, static_cast<uint64_t>(i));
  }
  EXPECT_GT((*log)->CachedMap().entries.size(), 2u);
  // Reads route across blocks through the registered getBlock function.
  for (int i = 0; i < n; i += 37) {
    auto r = (*log)->ReadOp("read", {std::to_string(i)});
    ASSERT_TRUE(r.ok()) << i << ": " << r.status();
    const std::string want = "payload-" + std::to_string(i);
    EXPECT_EQ(r->substr(0, want.size()), want);
  }
}

TEST_F(CustomDsTest, TrimReclaimsRecords) {
  auto log = client_->OpenCustom("/job/log", "sharedlog");
  ASSERT_TRUE(log.ok());
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(LogAppend(log->get(), "r" + std::to_string(i)).ok());
  }
  auto trimmed = (*log)->DeleteOp("trim", {"10"});
  ASSERT_TRUE(trimmed.ok());
  EXPECT_EQ(*trimmed, "10");
  EXPECT_EQ((*log)->ReadOp("read", {"5"}).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(*(*log)->ReadOp("read", {"15"}), "r15");
}

TEST_F(CustomDsTest, StaleReaderRefreshesAfterGrowth) {
  auto writer = client_->OpenCustom("/job/log", "sharedlog");
  auto reader = client_->OpenCustom("/job/log", "sharedlog");
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(reader.ok());
  const int n = 400;
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(
        LogAppend(writer->get(), std::string(60, 'x') + std::to_string(i)).ok());
  }
  // Reader still holds the single-block map; the router's out-of-range
  // signal makes it refresh transparently.
  auto r = (*reader)->ReadOp("read", {std::to_string(n - 1)});
  ASSERT_TRUE(r.ok()) << r.status();
}

TEST_F(CustomDsTest, FlushAndLoadRoundTrip) {
  JiffyCluster::Options opts;
  opts.config.num_memory_servers = 2;
  opts.config.blocks_per_server = 16;
  opts.config.block_size_bytes = 8 << 10;
  opts.config.lease_duration = 1 * kSecond;
  SimClock clock;
  opts.clock = &clock;
  JiffyCluster cluster(opts);
  JiffyClient client(&cluster);
  ASSERT_TRUE(client.RegisterJob("j").ok());
  ASSERT_TRUE(client.CreateAddrPrefix("/j/log", {}).ok());
  auto log = client.OpenCustom("/j/log", "sharedlog");
  ASSERT_TRUE(log.ok());
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(LogAppend(log->get(), "persist" + std::to_string(i)).ok());
  }
  // Lease lapses: the custom content is flushed via its Serialize().
  clock.AdvanceBy(2 * kSecond);
  ASSERT_EQ(cluster.controller_shard(0)->RunExpiryScan(), 1u);
  ASSERT_TRUE(client.LoadAddrPrefix("/j/log", "jiffy/j/log").ok());
  auto revived = client.OpenCustom("/j/log", "sharedlog");
  ASSERT_TRUE(revived.ok()) << revived.status();
  EXPECT_EQ(*(*revived)->ReadOp("read", {"25"}), "persist25");
}

TEST_F(CustomDsTest, ReplicatedLogSurvivesServerFailure) {
  CreateOptions copts;
  copts.replication_factor = 2;
  ASSERT_TRUE(client_->CreateAddrPrefix("/job/rlog", {}, copts).ok());
  auto log = client_->OpenCustom("/job/rlog", "sharedlog");
  ASSERT_TRUE(log.ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(LogAppend(log->get(), "replicated" + std::to_string(i)).ok());
  }
  cluster_->FailServer((*log)->CachedMap().entries[0].block.server_id);
  auto r = (*log)->ReadOp("read", {"3"});
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(*r, "replicated3");
}

}  // namespace
}  // namespace jiffy
