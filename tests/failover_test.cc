// Controller fault tolerance (§4.2.1 primary-backup): snapshot/restore of
// the full control-plane state, and end-to-end failover — a standby
// controller restored from the primary's snapshot serves the same jobs
// against the same data plane.

#include <gtest/gtest.h>

#include "src/client/jiffy_client.h"
#include "src/ds/kv_content.h"

namespace jiffy {
namespace {

class FailoverTest : public ::testing::Test {
 protected:
  FailoverTest() {
    JiffyCluster::Options opts;
    opts.config.num_memory_servers = 4;
    opts.config.blocks_per_server = 32;
    opts.config.block_size_bytes = 8 << 10;
    opts.config.lease_duration = 3600 * kSecond;
    cluster_ = std::make_unique<JiffyCluster>(opts);
    client_ = std::make_unique<JiffyClient>(cluster_.get());
  }

  // A standby controller sharing the primary's data plane (allocator,
  // hooks, backing store) — the §4.2.1 backup.
  std::unique_ptr<Controller> MakeStandby() {
    return std::make_unique<Controller>(cluster_->config(), cluster_->clock(),
                                        cluster_->allocator(), cluster_.get(),
                                        cluster_->backing());
  }

  std::unique_ptr<JiffyCluster> cluster_;
  std::unique_ptr<JiffyClient> client_;
};

TEST_F(FailoverTest, SnapshotRestoreRoundTripsState) {
  Controller* primary = cluster_->controller_shard(0);
  ASSERT_TRUE(primary->RegisterJob("job").ok());
  CreateOptions opts;
  opts.replication_factor = 2;
  opts.world_writable = false;
  opts.lease_duration = 5 * kSecond;
  ASSERT_TRUE(primary->CreateAddrPrefix("job", "map", {}, opts).ok());
  ASSERT_TRUE(primary->CreateAddrPrefix("job", "reduce", {"map"}).ok());
  ASSERT_TRUE(
      primary->InitDataStructure("job", "map", DsType::kKvStore, 16 << 10).ok());
  ASSERT_TRUE(primary->RenewLease("job", "map").ok());

  auto standby = MakeStandby();
  ASSERT_TRUE(standby->Restore(primary->Snapshot()).ok());

  // Hierarchy structure survives (DAG edges validated by path resolution).
  EXPECT_TRUE(standby->HasJob("job"));
  EXPECT_TRUE(standby->ValidatePath(*AddressPath::Parse("/job/map/reduce")).ok());
  EXPECT_FALSE(standby->ValidatePath(*AddressPath::Parse("/job/reduce/map")).ok());
  // Lease metadata survives.
  EXPECT_EQ(*standby->GetLeaseDuration("job", "map"), 5 * kSecond);
  // Partition map (blocks, ranges, replicas, version) survives bit-for-bit.
  auto pm_primary = primary->GetPartitionMap("job", "map");
  auto pm_standby = standby->GetPartitionMap("job", "map");
  ASSERT_TRUE(pm_primary.ok());
  ASSERT_TRUE(pm_standby.ok());
  EXPECT_EQ(pm_primary->version, pm_standby->version);
  ASSERT_EQ(pm_primary->entries.size(), pm_standby->entries.size());
  for (size_t i = 0; i < pm_primary->entries.size(); ++i) {
    EXPECT_EQ(pm_primary->entries[i].block, pm_standby->entries[i].block);
    EXPECT_EQ(pm_primary->entries[i].lo, pm_standby->entries[i].lo);
    EXPECT_EQ(pm_primary->entries[i].hi, pm_standby->entries[i].hi);
    EXPECT_EQ(pm_primary->entries[i].replicas, pm_standby->entries[i].replicas);
  }
  // Permissions survive.
  auto denied = standby->GetPartitionMapAs("intruder", "job", "map",
                                           /*for_write=*/true);
  EXPECT_EQ(denied.status().code(), StatusCode::kPermissionDenied);
  // Metadata accounting identical.
  EXPECT_EQ(*primary->JobMetadataBytes("job"), *standby->JobMetadataBytes("job"));
}

TEST_F(FailoverTest, RestoreRequiresFreshController) {
  Controller* primary = cluster_->controller_shard(0);
  ASSERT_TRUE(primary->RegisterJob("job").ok());
  const std::string snap = primary->Snapshot();
  EXPECT_EQ(primary->Restore(snap).code(), StatusCode::kFailedPrecondition);
}

TEST_F(FailoverTest, RestoreRejectsGarbage) {
  auto standby = MakeStandby();
  EXPECT_FALSE(standby->Restore("definitely-not-a-snapshot").ok());
}

TEST_F(FailoverTest, PromotedStandbyServesLiveData) {
  // Write real data through the primary, snapshot, "crash" the primary,
  // and keep operating through the promoted standby: the data plane is
  // untouched, so all data remains readable and writable.
  Controller* primary = cluster_->controller_shard(0);
  ASSERT_TRUE(client_->RegisterJob("job").ok());
  ASSERT_TRUE(client_->CreateAddrPrefix("/job/kv", {}).ok());
  auto kv = client_->OpenKv("/job/kv");
  ASSERT_TRUE(kv.ok());
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE((*kv)->Put("k" + std::to_string(i), std::string(60, 'f')).ok());
  }
  // Let in-flight background splits publish before snapshotting the
  // control plane (in-flight migration state is not serialized).
  if (cluster_->repartitioner() != nullptr) {
    cluster_->repartitioner()->WaitIdle();
  }
  const std::string snap = primary->Snapshot();

  auto standby = MakeStandby();
  ASSERT_TRUE(standby->Restore(snap).ok());
  // The promoted standby serves metadata: a fresh client resolves the map
  // and reads every key directly from the (unchanged) data plane.
  auto map = standby->GetPartitionMap("job", "kv");
  ASSERT_TRUE(map.ok());
  EXPECT_GT(map->entries.size(), 1u);  // Splits happened pre-failover.
  for (int i = 0; i < 300; i += 13) {
    bool found = false;
    for (const auto& entry : map->entries) {
      Block* block = cluster_->ResolveBlock(entry.block);
      ASSERT_NE(block, nullptr);
      Block::OpLock lock(*block);
      auto* shard = dynamic_cast<KvShard*>(block->content());
      if (shard != nullptr && shard->Get("k" + std::to_string(i)).ok()) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << "k" << i;
  }
  // Control-plane mutations continue on the standby: grow the structure.
  auto added = standby->AddBlock("job", "kv", 0, 0);
  EXPECT_TRUE(added.ok()) << added.status();
  ASSERT_TRUE(standby->RemoveBlock("job", "kv", *added).ok());
  // Lease machinery continues: renewal + expiry bookkeeping work.
  EXPECT_TRUE(standby->RenewLease("job", "kv").ok());
  EXPECT_EQ(standby->RunExpiryScan(), 0u);
}

TEST_F(FailoverTest, SnapshotOfCustomAndExpiredState) {
  // Expired prefixes and custom-type metadata survive snapshots.
  JiffyCluster::Options opts;
  opts.config.num_memory_servers = 2;
  opts.config.blocks_per_server = 16;
  opts.config.block_size_bytes = 8 << 10;
  opts.config.lease_duration = 1 * kSecond;
  SimClock clock;
  opts.clock = &clock;
  JiffyCluster cluster(opts);
  Controller* primary = cluster.controller_shard(0);
  ASSERT_TRUE(primary->RegisterJob("j").ok());
  CreateOptions copts;
  copts.init_ds = true;
  ASSERT_TRUE(primary->CreateAddrPrefix("j", "t", {}, copts).ok());
  clock.AdvanceBy(2 * kSecond);
  ASSERT_EQ(primary->RunExpiryScan(), 1u);

  Controller standby(cluster.config(), &clock, cluster.allocator(), &cluster,
                     cluster.backing());
  ASSERT_TRUE(standby.Restore(primary->Snapshot()).ok());
  EXPECT_TRUE(*standby.IsExpired("j", "t"));
  // The standby can reload the flushed data, exactly like the primary.
  ASSERT_TRUE(standby.LoadAddrPrefix("j", "t", "jiffy/j/t").ok());
  EXPECT_FALSE(*standby.IsExpired("j", "t"));
}

}  // namespace
}  // namespace jiffy
