// Failure-path matrix (DESIGN.md §10): fault-injecting transport, the
// client retry layer that masks transient wire faults, and end-to-end
// failover — chain crashes at every position, crashes during chunked
// migration, renewal storms across controller failover, and exactly-once
// queue delivery under lost responses.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <set>
#include <string_view>
#include <thread>
#include <vector>

#include "src/client/jiffy_client.h"
#include "src/ds/kv_content.h"
#include "src/obs/trace.h"

namespace jiffy {
namespace {

// --- Transport-level fault injection ---------------------------------------

TEST(FaultTransportTest, PeekDoesNotConsumeJitterEntropy) {
  // Regression: PeekRoundTrip used to draw from the shared jitter rng, so a
  // planning peek perturbed the seeded jitter sequence of later exchanges.
  NetworkModel model = NetworkModel::Ec2IntraDc();
  ASSERT_GT(model.jitter, 0);
  RealClock* clock = RealClock::Instance();
  Transport plain(model, Transport::Mode::kZero, clock, /*seed=*/99);
  Transport peeked(model, Transport::Mode::kZero, clock, /*seed=*/99);
  for (int i = 0; i < 64; ++i) {
    // Interleave peeks: they must not shift the sampled sequence.
    peeked.PeekRoundTrip(1000, 200);
    peeked.PeekRoundTrip(64, 64);
    EXPECT_EQ(plain.RoundTrip(1000, 200), peeked.RoundTrip(1000, 200)) << i;
  }
  // Peeks are the expected (mean) cost: deterministic across calls.
  EXPECT_EQ(plain.PeekRoundTrip(500, 500), plain.PeekRoundTrip(500, 500));
}

TEST(FaultTransportTest, SeededFaultScheduleIsDeterministic) {
  // Identical seeds + identical traffic must reproduce the exact same fault
  // schedule (statuses AND charged costs) in kZero mode.
  NetworkModel model = NetworkModel::Ec2IntraDc();
  RealClock* clock = RealClock::Instance();
  FaultPlan plan;
  plan.drop_prob = 0.1;
  plan.error_prob = 0.1;
  plan.delay_prob = 0.1;
  plan.extra_delay = 50 * kMicrosecond;
  plan.seed = 1234;
  Transport a(model, Transport::Mode::kZero, clock, /*seed=*/7);
  Transport b(model, Transport::Mode::kZero, clock, /*seed=*/7);
  a.InstallFaultPlan(plan);
  b.InstallFaultPlan(plan);
  int faults = 0;
  for (int i = 0; i < 400; ++i) {
    DurationNs cost_a = 0, cost_b = 0;
    const Status sa = a.Exchange(i % 4, 256 + i, 64, &cost_a);
    const Status sb = b.Exchange(i % 4, 256 + i, 64, &cost_b);
    ASSERT_EQ(sa.code(), sb.code()) << "exchange " << i;
    ASSERT_EQ(cost_a, cost_b) << "exchange " << i;
    faults += sa.ok() ? 0 : 1;
  }
  EXPECT_GT(faults, 0);  // ~20% of 400 exchanges should have faulted.
  EXPECT_EQ(a.fault_drops(), b.fault_drops());
  EXPECT_EQ(a.fault_errors(), b.fault_errors());
  EXPECT_EQ(a.fault_delays(), b.fault_delays());
}

TEST(FaultTransportTest, DropChargesTimeoutErrorChargesRtt) {
  NetworkModel model = NetworkModel::Ec2IntraDc();
  RealClock* clock = RealClock::Instance();
  Transport t(model, Transport::Mode::kZero, clock);
  const DurationNs expected_rtt = t.PeekRoundTrip(1000, 1000);

  FaultPlan drops;
  drops.drop_prob = 1.0;
  t.InstallFaultPlan(drops);
  DurationNs cost = 0;
  EXPECT_EQ(t.Exchange(0, 1000, 1000, &cost).code(), StatusCode::kTimeout);
  EXPECT_GE(cost, 4 * expected_rtt);  // Timeout charge, not a normal RTT.
  EXPECT_EQ(t.fault_drops(), 1u);

  FaultPlan errors;
  errors.error_prob = 1.0;
  t.InstallFaultPlan(errors);
  EXPECT_EQ(t.Exchange(0, 1000, 1000, &cost).code(), StatusCode::kUnavailable);
  EXPECT_LT(cost, 4 * expected_rtt);  // Normal RTT charge.
  EXPECT_EQ(t.fault_errors(), 1u);

  FaultPlan delays;
  delays.delay_prob = 1.0;
  delays.extra_delay = 10 * kMillisecond;
  t.InstallFaultPlan(delays);
  EXPECT_TRUE(t.Exchange(0, 1000, 1000, &cost).ok());
  EXPECT_GE(cost, 10 * kMillisecond);
  EXPECT_EQ(t.fault_delays(), 1u);

  t.ClearFaultPlan();
  EXPECT_TRUE(t.Exchange(0, 1000, 1000, &cost).ok());
  EXPECT_EQ(t.faults_injected(), 2u);  // Drop + error (delay succeeded).
}

TEST(FaultTransportTest, OutageWindowFailsFastThenLifts) {
  SimClock clock;
  clock.AdvanceBy(1 * kSecond);
  Transport t(NetworkModel::Ec2IntraDc(), Transport::Mode::kZero, &clock);
  FaultPlan plan;
  plan.outages.push_back({/*endpoint=*/2, /*from=*/0, /*until=*/5 * kSecond});
  t.InstallFaultPlan(plan);

  EXPECT_FALSE(t.EndpointReachable(2));
  EXPECT_TRUE(t.EndpointReachable(1));
  EXPECT_TRUE(t.EndpointReachable(Transport::kAnyEndpoint));
  EXPECT_EQ(t.Exchange(2, 100, 100).code(), StatusCode::kUnavailable);
  EXPECT_TRUE(t.Exchange(1, 100, 100).ok());
  EXPECT_EQ(t.fault_outages(), 1u);

  clock.AdvanceBy(10 * kSecond);  // Outage window lapses.
  EXPECT_TRUE(t.EndpointReachable(2));
  EXPECT_TRUE(t.Exchange(2, 100, 100).ok());
}

// --- Client retry layer ------------------------------------------------------

class FaultClusterTest : public ::testing::Test {
 protected:
  FaultClusterTest() {
    JiffyCluster::Options opts;
    opts.config.num_memory_servers = 4;
    opts.config.blocks_per_server = 64;
    opts.config.block_size_bytes = 16 << 10;
    opts.config.lease_duration = 3600 * kSecond;
    cluster_ = std::make_unique<JiffyCluster>(opts);
    client_ = std::make_unique<JiffyClient>(cluster_.get());
    EXPECT_TRUE(client_->RegisterJob("job").ok());
  }

  static FaultPlan TransientFaults(double rate, uint64_t seed) {
    FaultPlan plan;
    plan.drop_prob = rate / 2;
    plan.error_prob = rate / 2;
    plan.seed = seed;
    return plan;
  }

  void InstallEverywhere(const FaultPlan& plan) {
    cluster_->data_transport()->InstallFaultPlan(plan);
    cluster_->control_transport()->InstallFaultPlan(plan);
  }

  void ClearEverywhere() {
    cluster_->data_transport()->ClearFaultPlan();
    cluster_->control_transport()->ClearFaultPlan();
  }

  std::unique_ptr<JiffyCluster> cluster_;
  std::unique_ptr<JiffyClient> client_;
};

TEST_F(FaultClusterTest, KvClosedLoopMasksOnePercentFaults) {
  ASSERT_TRUE(client_->CreateAddrPrefix("/job/kv", {}).ok());
  auto kv = client_->OpenKv("/job/kv");
  ASSERT_TRUE(kv.ok());
  InstallEverywhere(TransientFaults(0.01, /*seed=*/42));
  for (int i = 0; i < 1000; ++i) {
    const std::string k = "k" + std::to_string(i % 100);
    ASSERT_TRUE((*kv)->Put(k, "v" + std::to_string(i)).ok()) << i;
    auto v = (*kv)->Get(k);
    ASSERT_TRUE(v.ok()) << i << ": " << v.status();
    EXPECT_EQ(*v, "v" + std::to_string(i));
  }
  ClearEverywhere();
  // Faults were injected AND masked (never client-visible).
  EXPECT_GT(cluster_->data_transport()->faults_injected() +
                cluster_->control_transport()->faults_injected(),
            0u);
  auto state = cluster_->registry()->GetOrCreate("job", "kv");
  EXPECT_GT(state->masked_faults.load() + state->retries.load(), 0u);
}

TEST_F(FaultClusterTest, FileClosedLoopMasksOnePercentFaults) {
  ASSERT_TRUE(client_->CreateAddrPrefix("/job/f", {}).ok());
  auto file = client_->OpenFile("/job/f");
  ASSERT_TRUE(file.ok());
  InstallEverywhere(TransientFaults(0.01, /*seed=*/43));
  const std::string chunk(128, 'x');
  for (int i = 0; i < 400; ++i) {
    ASSERT_TRUE((*file)->Append(chunk).ok()) << i;
  }
  for (int i = 0; i < 400; ++i) {
    auto r = (*file)->Read(static_cast<uint64_t>(i) * 128, 128);
    ASSERT_TRUE(r.ok()) << i << ": " << r.status();
    EXPECT_EQ(*r, chunk);
  }
  ClearEverywhere();
  EXPECT_GT(cluster_->data_transport()->faults_injected(), 0u);
}

TEST_F(FaultClusterTest, QueueClosedLoopMasksOnePercentFaults) {
  ASSERT_TRUE(client_->CreateAddrPrefix("/job/q", {}).ok());
  auto q = client_->OpenQueue("/job/q");
  ASSERT_TRUE(q.ok());
  InstallEverywhere(TransientFaults(0.01, /*seed=*/44));
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE((*q)->Enqueue("item" + std::to_string(i)).ok()) << i;
  }
  for (int i = 0; i < 500; ++i) {
    auto item = (*q)->Dequeue();
    ASSERT_TRUE(item.ok()) << i << ": " << item.status();
    EXPECT_EQ(*item, "item" + std::to_string(i)) << "lost or duplicated item";
  }
  ClearEverywhere();
  EXPECT_GT(cluster_->data_transport()->faults_injected(), 0u);
}

TEST_F(FaultClusterTest, DequeueRedeliveryIsExactlyOnce) {
  // A dequeue whose response is lost must redeliver the SAME item on retry —
  // never silently consume it (loss) or hand out the next one (duplicate
  // consume). Drive the drop rate high enough that many dequeues need
  // several wire attempts.
  ASSERT_TRUE(client_->CreateAddrPrefix("/job/q", {}).ok());
  auto q = client_->OpenQueue("/job/q");
  ASSERT_TRUE(q.ok());
  const int kItems = 300;
  for (int i = 0; i < kItems; ++i) {
    ASSERT_TRUE((*q)->Enqueue("m" + std::to_string(i)).ok());
  }
  FaultPlan plan;
  plan.drop_prob = 0.25;
  plan.seed = 77;
  cluster_->data_transport()->InstallFaultPlan(plan);
  std::vector<std::string> got;
  for (int i = 0; i < kItems; ++i) {
    auto item = (*q)->Dequeue();
    ASSERT_TRUE(item.ok()) << i << ": " << item.status();
    got.push_back(*item);
  }
  cluster_->data_transport()->ClearFaultPlan();
  ASSERT_GT(cluster_->data_transport()->fault_drops(), 0u);
  // In-order, exactly-once: the received sequence is exactly the enqueued one.
  for (int i = 0; i < kItems; ++i) {
    EXPECT_EQ(got[i], "m" + std::to_string(i)) << "at " << i;
  }
  // Queue fully drained (nothing left behind, nothing consumed twice).
  EXPECT_EQ((*q)->Dequeue().status().code(), StatusCode::kNotFound);
}

TEST_F(FaultClusterTest, RetryGivesUpAgainstTotalLoss) {
  // 100% drop rate: retries must brake (attempts/deadline/budget) and
  // surface the failure instead of hanging.
  ASSERT_TRUE(client_->CreateAddrPrefix("/job/kv", {}).ok());
  auto kv = client_->OpenKv("/job/kv");
  ASSERT_TRUE(kv.ok());
  ASSERT_TRUE((*kv)->Put("k", "v").ok());
  FaultPlan plan;
  plan.drop_prob = 1.0;
  cluster_->data_transport()->InstallFaultPlan(plan);
  const Status st = (*kv)->Put("k", "v2");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(RetryPolicy::IsRetryable(st.code()));
  cluster_->data_transport()->ClearFaultPlan();
  // Recovery is immediate once the wire heals.
  EXPECT_TRUE((*kv)->Put("k", "v3").ok());
  EXPECT_EQ(*(*kv)->Get("k"), "v3");
}

TEST_F(FaultClusterTest, OutageWindowMasksViaFailover) {
  // A server inside an outage window is treated like a failed server: the
  // client fails over to the promoted chain and the op still succeeds.
  CreateOptions opts;
  opts.replication_factor = 2;
  ASSERT_TRUE(client_->CreateAddrPrefix("/job/kv", {}, opts).ok());
  auto kv = client_->OpenKv("/job/kv");
  ASSERT_TRUE(kv.ok());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE((*kv)->Put("k" + std::to_string(i), "v").ok());
  }
  const BlockId primary = (*kv)->CachedMap().entries[0].block;
  FaultPlan plan;
  plan.outages.push_back({primary.server_id, /*from=*/0,
                          /*until=*/std::numeric_limits<TimeNs>::max()});
  cluster_->data_transport()->InstallFaultPlan(plan);
  for (int i = 0; i < 20; ++i) {
    auto v = (*kv)->Get("k" + std::to_string(i));
    ASSERT_TRUE(v.ok()) << i << ": " << v.status();
  }
  ASSERT_TRUE((*kv)->Put("during-outage", "w").ok());
  cluster_->data_transport()->ClearFaultPlan();
  EXPECT_EQ(*(*kv)->Get("during-outage"), "w");
}

// --- Trace propagation under faults ------------------------------------------

// Enables tracing for one test and restores/clears on exit.
class ScopedTracing {
 public:
  ScopedTracing()
      : enabled_(obs::Enabled()),
        trace_enabled_(obs::Tracer::Global()->enabled()) {
    obs::SetEnabled(true);
    obs::Tracer::Global()->SetEnabled(true);
    obs::SetTraceSampleEvery(1);
    obs::Tracer::Global()->Clear();
  }
  ~ScopedTracing() {
    obs::SetEnabled(enabled_);
    obs::Tracer::Global()->SetEnabled(trace_enabled_);
    obs::Tracer::Global()->Clear();
  }

 private:
  bool enabled_;
  bool trace_enabled_;
};

TEST_F(FaultClusterTest, RetriedAttemptsStayInTheClientOpTrace) {
  // A fault-masked op is several wire attempts but ONE logical request: all
  // of its transport spans must carry the op's trace_id, never a fresh one.
  ASSERT_TRUE(client_->CreateAddrPrefix("/job/kv", {}).ok());
  auto kv = client_->OpenKv("/job/kv");
  ASSERT_TRUE(kv.ok());
  ASSERT_TRUE((*kv)->Put("warm", "up").ok());  // Map settled before tracing.
  ScopedTracing tracing;
  FaultPlan plan;
  plan.drop_prob = 0.3;
  plan.seed = 4242;
  cluster_->data_transport()->InstallFaultPlan(plan);
  const int kOps = 50;
  for (int i = 0; i < kOps; ++i) {
    ASSERT_TRUE((*kv)->Put("k", "v" + std::to_string(i)).ok()) << i;
  }
  cluster_->data_transport()->ClearFaultPlan();
  ASSERT_GT(cluster_->data_transport()->fault_drops(), 0u);

  std::set<uint64_t> op_traces;
  std::map<uint64_t, int> rtts_per_trace;
  for (const auto& e : obs::Tracer::Global()->Collect()) {
    if (std::string_view(e.name) == "kv.put") {
      EXPECT_NE(e.trace_id, 0u);
      op_traces.insert(e.trace_id);
    } else if (std::string_view(e.name) == "net.rtt") {
      ++rtts_per_trace[e.trace_id];
    }
  }
  EXPECT_EQ(op_traces.size(), static_cast<size_t>(kOps));  // One trace per op.
  int max_attempts = 0;
  for (const auto& [trace, n] : rtts_per_trace) {
    // No orphan transport spans: every RTT belongs to some client op.
    EXPECT_TRUE(op_traces.count(trace) > 0) << "orphan net.rtt trace";
    max_attempts = std::max(max_attempts, n);
  }
  // Some op needed more than one attempt, and the retries joined its trace.
  EXPECT_GT(max_attempts, 1);
}

TEST_F(FaultClusterTest, FailoverRepairJoinsTheClientOpTrace) {
  // When an op trips chain repair, the controller-side repair span must be
  // causally linked under the op that triggered it — that is what makes
  // "why was this Get slow?" answerable from one trace.
  CreateOptions opts;
  opts.replication_factor = 2;
  ASSERT_TRUE(client_->CreateAddrPrefix("/job/kv", {}, opts).ok());
  auto kv = client_->OpenKv("/job/kv");
  ASSERT_TRUE(kv.ok());
  ASSERT_TRUE((*kv)->Put("k", "v").ok());
  const BlockId primary = (*kv)->CachedMap().entries[0].block;
  ScopedTracing tracing;
  FaultPlan plan;
  plan.outages.push_back({primary.server_id, /*from=*/0,
                          /*until=*/std::numeric_limits<TimeNs>::max()});
  cluster_->data_transport()->InstallFaultPlan(plan);
  // Writes go to the chain head (the unreachable primary), forcing failover.
  ASSERT_TRUE((*kv)->Put("k", "w").ok());
  cluster_->data_transport()->ClearFaultPlan();
  EXPECT_EQ(*(*kv)->Get("k"), "w");

  const auto events = obs::Tracer::Global()->Collect();
  std::set<uint64_t> put_traces;
  for (const auto& e : events) {
    if (std::string_view(e.name) == "kv.put") {
      EXPECT_NE(e.trace_id, 0u);
      put_traces.insert(e.trace_id);
    }
  }
  ASSERT_FALSE(put_traces.empty());
  bool repair_linked = false;
  for (const auto& e : events) {
    if (std::string_view(e.name) == "ctl.repair_entry" &&
        put_traces.count(e.trace_id) > 0) {
      EXPECT_NE(e.parent_id, 0u);  // Child of the op, not a fresh root.
      repair_linked = true;
    }
  }
  EXPECT_TRUE(repair_linked) << "repair ran outside the triggering op's trace";
}

// --- End-to-end failover -----------------------------------------------------

class FaultFailoverTest : public ::testing::Test {
 protected:
  std::unique_ptr<JiffyCluster> MakeCluster(uint32_t servers = 4) {
    JiffyCluster::Options opts;
    opts.config.num_memory_servers = servers;
    opts.config.blocks_per_server = 64;
    opts.config.block_size_bytes = 16 << 10;
    opts.config.lease_duration = 3600 * kSecond;
    return std::make_unique<JiffyCluster>(opts);
  }
};

TEST_F(FaultFailoverTest, ChainSurvivesCrashAtEveryPosition) {
  // Replication factor 3: crash the head (primary), a middle replica, and
  // the tail (read target) in separate clusters; data must survive each.
  for (int position = 0; position < 3; ++position) {
    auto cluster = MakeCluster();
    JiffyClient client(cluster.get());
    ASSERT_TRUE(client.RegisterJob("job").ok());
    CreateOptions opts;
    opts.replication_factor = 3;
    ASSERT_TRUE(client.CreateAddrPrefix("/job/kv", {}, opts).ok());
    auto kv = client.OpenKv("/job/kv");
    ASSERT_TRUE(kv.ok());
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE((*kv)->Put("k" + std::to_string(i), "v").ok());
    }
    auto map = (*kv)->CachedMap();
    ASSERT_EQ(map.entries[0].replicas.size(), 2u);
    const BlockId victim = position == 0 ? map.entries[0].block
                                         : map.entries[0].replicas[position - 1];
    cluster->FailServer(victim.server_id);
    for (int i = 0; i < 50; ++i) {
      auto v = (*kv)->Get("k" + std::to_string(i));
      ASSERT_TRUE(v.ok()) << "position " << position << " key " << i << ": "
                          << v.status();
    }
    ASSERT_TRUE((*kv)->Put("after", "crash").ok()) << "position " << position;
    // Eager repair restored the chain to factor 3 on live servers only.
    ASSERT_TRUE((*kv)->RefreshMap().ok());
    map = (*kv)->CachedMap();
    EXPECT_EQ(map.entries[0].replicas.size(), 2u) << "position " << position;
    EXPECT_NE(map.entries[0].block.server_id, victim.server_id);
    for (const BlockId& r : map.entries[0].replicas) {
      EXPECT_NE(r.server_id, victim.server_id) << "position " << position;
    }
  }
}

TEST_F(FaultFailoverTest, PartitionMapRepairedEagerlyAfterFailServer) {
  // Regression: FailServer used to mark the server dead only in the
  // allocator, so GetPartitionMap kept handing out dead addresses until a
  // client happened to trip FailOver. The controller must repair its
  // entries as part of FailServer itself.
  auto cluster = MakeCluster();
  JiffyClient client(cluster.get());
  ASSERT_TRUE(client.RegisterJob("job").ok());
  CreateOptions opts;
  opts.replication_factor = 2;
  ASSERT_TRUE(client.CreateAddrPrefix("/job/kv", {}, opts).ok());
  auto kv = client.OpenKv("/job/kv");
  ASSERT_TRUE(kv.ok());
  ASSERT_TRUE((*kv)->Put("k", "v").ok());
  const BlockId primary = (*kv)->CachedMap().entries[0].block;
  const uint64_t version_before = (*kv)->CachedMap().version;

  cluster->FailServer(primary.server_id);

  // No client op in between: the repair happened inside FailServer.
  auto map = cluster->ControllerFor("job")->GetPartitionMap("job", "kv");
  ASSERT_TRUE(map.ok());
  EXPECT_GT(map->version, version_before);
  for (const auto& entry : map->entries) {
    EXPECT_NE(entry.block.server_id, primary.server_id);
    EXPECT_FALSE(entry.lost);
    EXPECT_EQ(entry.replicas.size(), 1u);  // Chain length restored.
    for (const BlockId& r : entry.replicas) {
      EXPECT_NE(r.server_id, primary.server_id);
    }
  }
}

TEST_F(FaultFailoverTest, ResolveOfDeadBlockFailsCleanly) {
  // Regression: every resolve site must tolerate a null Block* (dead or
  // unreachable server) instead of dereferencing it.
  auto cluster = MakeCluster();
  JiffyClient client(cluster.get());
  ASSERT_TRUE(client.RegisterJob("job").ok());
  ASSERT_TRUE(client.CreateAddrPrefix("/job/kv", {}).ok());  // r = 1.
  auto kv = client.OpenKv("/job/kv");
  ASSERT_TRUE(kv.ok());
  ASSERT_TRUE((*kv)->Put("k", "v").ok());
  const BlockId primary = (*kv)->CachedMap().entries[0].block;
  cluster->FailServer(primary.server_id);
  EXPECT_EQ(cluster->ResolveBlock(primary), nullptr);
  // Unreplicated data is lost — but every op fails with a clean status.
  EXPECT_EQ(client.cluster() == nullptr, false);
  EXPECT_EQ((*kv)->Get("k").status().code(), StatusCode::kUnavailable);
  EXPECT_EQ((*kv)->Put("k", "w").code(), StatusCode::kUnavailable);
  EXPECT_EQ((*kv)->Delete("k").code(), StatusCode::kUnavailable);
}

TEST_F(FaultFailoverTest, LostPrefixReloadsFromPersistentTier) {
  // When the whole chain dies, the entry is flagged `lost`, repairs fail
  // fast with kUnavailable, and LoadAddrPrefix brings the data back from a
  // checkpoint.
  auto cluster = MakeCluster();
  JiffyClient client(cluster.get());
  ASSERT_TRUE(client.RegisterJob("job").ok());
  ASSERT_TRUE(client.CreateAddrPrefix("/job/kv", {}).ok());  // r = 1.
  auto kv = client.OpenKv("/job/kv");
  ASSERT_TRUE(kv.ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE((*kv)->Put("k" + std::to_string(i), "v").ok());
  }
  ASSERT_TRUE(client.FlushAddrPrefix("/job/kv", "ckpt/kv").ok());
  const BlockId primary = (*kv)->CachedMap().entries[0].block;
  cluster->FailServer(primary.server_id);

  // The entry is flagged lost: repairs fail fast, the map says so.
  auto map = cluster->ControllerFor("job")->GetPartitionMap("job", "kv");
  ASSERT_TRUE(map.ok());
  ASSERT_EQ(map->entries.size(), 1u);
  EXPECT_TRUE(map->entries[0].lost);
  EXPECT_EQ(cluster->ControllerFor("job")
                ->RepairEntry("job", "kv", map->entries[0].block)
                .code(),
            StatusCode::kUnavailable);
  EXPECT_EQ((*kv)->Get("k0").status().code(), StatusCode::kUnavailable);

  // The `lost` flag survives a controller failover (snapshot v2).
  Controller standby(cluster->config(), cluster->clock(), cluster->allocator(),
                     cluster.get(), cluster->backing());
  ASSERT_TRUE(standby.Restore(cluster->ControllerFor("job")->Snapshot()).ok());
  auto standby_map = standby.GetPartitionMap("job", "kv");
  ASSERT_TRUE(standby_map.ok());
  EXPECT_TRUE(standby_map->entries[0].lost);

  // Reload from the checkpoint revives the prefix on live servers.
  ASSERT_TRUE(client.LoadAddrPrefix("/job/kv", "ckpt/kv").ok());
  ASSERT_TRUE((*kv)->RefreshMap().ok());
  for (int i = 0; i < 10; ++i) {
    auto v = (*kv)->Get("k" + std::to_string(i));
    ASSERT_TRUE(v.ok()) << i << ": " << v.status();
    EXPECT_EQ(*v, "v");
  }
}

TEST_F(FaultFailoverTest, CrashDuringChunkedMigrationIsRepaired) {
  // A server crash while an entry is mid-migration: the eager repair
  // promotes a survivor but must NOT allocate replicas behind the
  // migration's back; re-replication happens after the bracket closes.
  auto cluster = MakeCluster();
  JiffyClient client(cluster.get());
  ASSERT_TRUE(client.RegisterJob("job").ok());
  CreateOptions opts;
  opts.replication_factor = 2;
  ASSERT_TRUE(client.CreateAddrPrefix("/job/kv", {}, opts).ok());
  auto kv = client.OpenKv("/job/kv");
  ASSERT_TRUE(kv.ok());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE((*kv)->Put("k" + std::to_string(i), "v").ok());
  }
  Controller* ctl = cluster->ControllerFor("job");
  const BlockId primary = (*kv)->CachedMap().entries[0].block;
  ASSERT_TRUE(ctl->BeginMigration("job", "kv", primary).ok());
  cluster->FailServer(primary.server_id);

  // Repaired: survivor promoted; chain deliberately short while migrating.
  auto map = ctl->GetPartitionMap("job", "kv");
  ASSERT_TRUE(map.ok());
  EXPECT_NE(map->entries[0].block.server_id, primary.server_id);
  EXPECT_FALSE(map->entries[0].lost);
  EXPECT_TRUE(map->entries[0].migrating);
  EXPECT_TRUE(map->entries[0].replicas.empty());

  // The migration aborts (its source vanished); closing the bracket lets
  // re-replication restore the factor.
  ASSERT_TRUE(ctl->EndMigration("job", "kv", map->entries[0].block).ok());
  auto created = ctl->ReReplicate("job", "kv");
  ASSERT_TRUE(created.ok()) << created.status();
  EXPECT_EQ(*created, 1u);
  for (int i = 0; i < 20; ++i) {
    auto v = (*kv)->Get("k" + std::to_string(i));
    ASSERT_TRUE(v.ok()) << i << ": " << v.status();
  }
}

TEST_F(FaultFailoverTest, BackgroundSplitsSurviveServerCrash) {
  // End-to-end: enough writes to trigger background chunked splits, then a
  // server crash mid-stream. Every key must remain readable afterwards.
  auto cluster = MakeCluster(/*servers=*/6);
  JiffyClient client(cluster.get());
  ASSERT_TRUE(client.RegisterJob("job").ok());
  CreateOptions opts;
  opts.replication_factor = 2;
  ASSERT_TRUE(client.CreateAddrPrefix("/job/kv", {}, opts).ok());
  auto kv = client.OpenKv("/job/kv");
  ASSERT_TRUE(kv.ok());
  const std::string value(256, 'd');
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE((*kv)->Put("k" + std::to_string(i), value).ok()) << i;
    if (i == 120) {
      // Crash whichever server hosts the current primary of entry 0.
      cluster->FailServer((*kv)->CachedMap().entries[0].block.server_id);
    }
  }
  if (cluster->repartitioner() != nullptr) {
    cluster->repartitioner()->WaitIdle();
  }
  for (int i = 0; i < 200; ++i) {
    auto v = (*kv)->Get("k" + std::to_string(i));
    ASSERT_TRUE(v.ok()) << i << ": " << v.status();
    EXPECT_EQ(*v, value);
  }
}

TEST_F(FaultFailoverTest, RenewalStormAcrossControllerFailover) {
  // Threads hammer lease renewals while the primary snapshots; a standby
  // restored from that snapshot keeps serving renewals for the same jobs.
  auto cluster = MakeCluster();
  JiffyClient client(cluster.get());
  ASSERT_TRUE(client.RegisterJob("job").ok());
  ASSERT_TRUE(client.CreateAddrPrefix("/job/a", {}).ok());
  ASSERT_TRUE(client.CreateAddrPrefix("/job/b", {"a"}).ok());
  ASSERT_TRUE(client.OpenKv("/job/a").ok());
  Controller* primary = cluster->ControllerFor("job");

  ASSERT_TRUE(primary->RenewLease("job", "a").ok());

  std::atomic<uint64_t> renewals{0};
  std::atomic<int> running{0};
  std::vector<std::thread> stormers;
  for (int t = 0; t < 4; ++t) {
    stormers.emplace_back([&] {
      running.fetch_add(1);
      for (int i = 0; i < 500; ++i) {
        auto r = primary->RenewLease("job", "a");
        if (r.ok()) {
          renewals.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  while (running.load() < 4) {
    std::this_thread::yield();
  }
  // Snapshot mid-storm (quiesces one job at a time under the storm).
  std::string snap;
  for (int i = 0; i < 20; ++i) {
    snap = primary->Snapshot();
  }
  for (auto& th : stormers) {
    th.join();
  }
  EXPECT_EQ(renewals.load(), 2000u);  // Every renewal succeeded mid-snapshot.

  Controller standby(cluster->config(), cluster->clock(), cluster->allocator(),
                     cluster.get(), cluster->backing());
  ASSERT_TRUE(standby.Restore(snap).ok());
  // The promoted standby serves the same renewal traffic.
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(standby.RenewLease("job", "a").ok()) << i;
  }
  EXPECT_TRUE(standby.GetPartitionMap("job", "a").ok());
}

// --- Replicated control plane under fire (DESIGN.md §14) --------------------

TEST(FaultRsmTest, RenewalStormRidesThroughLeaderCrash) {
  JiffyCluster::Options copts;
  copts.config.num_memory_servers = 4;
  copts.config.blocks_per_server = 32;
  copts.config.block_size_bytes = 16 << 10;
  copts.config.controller_replicas = 3;
  copts.config.lease_duration = 3600 * kSecond;  // No expiry mid-storm.
  copts.config.background_repartition = false;
  auto cluster = std::make_unique<JiffyCluster>(copts);
  rsm::ControllerGroup* group = cluster->controller_group(0);
  ASSERT_NE(group, nullptr);
  JiffyClient client(cluster.get());
  ASSERT_TRUE(client.RegisterJob("job").ok());
  ASSERT_TRUE(client.CreateHierarchy("job", {{"a", {}}, {"b", {"a"}}}).ok());
  // Concurrent renewal traffic from several clients while the leader is
  // crashed mid-storm: the client retry layer re-resolves the new leader,
  // and no renewal that was acknowledged may be lost.
  std::atomic<uint64_t> acked{0};
  std::atomic<int> running{0};
  std::vector<std::thread> stormers;
  for (int t = 0; t < 4; ++t) {
    stormers.emplace_back([&] {
      JiffyClient c(cluster.get());
      running.fetch_add(1);
      for (int i = 0; i < 250; ++i) {
        if (c.RenewLease("/job/a").ok()) {
          acked.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  while (running.load() < 4) {
    std::this_thread::yield();
  }
  group->LeaderController();
  const int leader = group->leader_index();
  ASSERT_GE(leader, 0);
  group->Crash(leader);
  for (auto& th : stormers) {
    th.join();
  }
  // Renewals are idempotent and retried, so every one is acknowledged.
  EXPECT_EQ(acked.load(), 1000u);
  // Post-failover the hierarchy is fully intact on the promoted leader.
  EXPECT_TRUE(client.GetLeaseDuration("/job/a").ok());
  EXPECT_TRUE(client.GetLeaseDuration("/job/b").ok());
  EXPECT_NE(group->leader_index(), leader);
}

TEST(FaultRsmTest, ConcurrentMutationsAcrossArmedCrashesStayConsistent) {
  // Several writer threads create prefixes while crash points fire on the
  // leader; afterwards every acknowledged prefix must exist and the group's
  // logs must agree (the TSan/ASan CI leg runs this under sanitizers).
  JiffyCluster::Options copts;
  copts.config.num_memory_servers = 4;
  copts.config.blocks_per_server = 32;
  copts.config.block_size_bytes = 16 << 10;
  copts.config.controller_replicas = 3;
  copts.config.background_repartition = false;
  auto cluster = std::make_unique<JiffyCluster>(copts);
  rsm::ControllerGroup* group = cluster->controller_group(0);
  JiffyClient seed(cluster.get());
  ASSERT_TRUE(seed.RegisterJob("job").ok());
  ASSERT_TRUE(seed.CreateHierarchy("job", {{"a", {}}}).ok());
  std::vector<std::vector<std::string>> acked(4);
  std::vector<std::thread> writers;
  std::atomic<int> running{0};
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&, t] {
      JiffyClient c(cluster.get());
      running.fetch_add(1);
      for (int i = 0; i < 40; ++i) {
        const std::string name =
            "w" + std::to_string(t) + "-" + std::to_string(i);
        Status st = c.CreateAddrPrefix("/job/" + name, {"a"});
        if (st.ok() || st.code() == StatusCode::kAlreadyExists) {
          acked[t].push_back(name);
        }
      }
    });
  }
  while (running.load() < 4) {
    std::this_thread::yield();
  }
  // Fire a rolling sequence of crash/restart on whoever currently leads.
  const rsm::CrashPoint points[] = {rsm::CrashPoint::kLeaderAfterAppend,
                                    rsm::CrashPoint::kLeaderAfterReplicate,
                                    rsm::CrashPoint::kLeaderAfterCommit};
  for (const auto point : points) {
    group->LeaderController();
    const int leader = group->leader_index();
    if (leader >= 0) {
      group->ArmCrash(leader, point);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    for (int i = 0; i < group->size(); ++i) {
      group->Restart(i);
    }
  }
  for (auto& th : writers) {
    th.join();
  }
  for (int i = 0; i < group->size(); ++i) {
    group->Restart(i);
  }
  // Zero lost DAG mutations: every acknowledged create is present.
  JiffyClient check(cluster.get());
  for (const auto& per_writer : acked) {
    for (const auto& name : per_writer) {
      EXPECT_TRUE(check.GetLeaseDuration("/job/" + name).ok()) << name;
    }
  }
  // And the replicas converge to identical logs. The first renewal may
  // still trip an armed crash point left over from the storm; restart and
  // renew once more so the whole group is alive for the comparison.
  ASSERT_TRUE(check.RenewLease("/job/a").ok());
  for (int i = 0; i < group->size(); ++i) {
    group->Restart(i);
  }
  ASSERT_TRUE(check.RenewLease("/job/a").ok());
  const int leader = group->leader_index();
  ASSERT_GE(leader, 0);
  for (int i = 0; i < group->size(); ++i) {
    EXPECT_EQ(group->replica(i)->last_index(),
              group->replica(leader)->last_index());
  }
}

}  // namespace
}  // namespace jiffy
