// Tests for the binary wire codec (DESIGN.md §12): request/response
// round-trips, stream reassembly, truncation, oversized lengths, seeded
// garbage fuzzing (bounded — these are unit tests, not a fuzz farm), and the
// CompletionWindow both the async client and Pipeline are built on.

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "src/block/block_id.h"
#include "src/common/random.h"
#include "src/net/completion.h"
#include "src/net/frame.h"

namespace jiffy {
namespace {

// Extracts the single frame body out of an encoded frame buffer.
std::string_view BodyOf(const std::string& frame) {
  size_t offset = 0;
  std::string_view body;
  EXPECT_TRUE(NextFrame(frame, &offset, &body).ok());
  EXPECT_EQ(offset, frame.size());
  return body;
}

// Flattens a WireResponse (head + scattered payloads) the way the socket
// writer would, then strips the length prefix.
std::string FlattenResponse(const WireResponse& resp) {
  std::string wire = resp.head;
  for (std::string_view p : resp.payloads) {
    wire.append(p);
  }
  size_t offset = 0;
  std::string_view body;
  EXPECT_TRUE(NextFrame(wire, &offset, &body).ok());
  EXPECT_EQ(offset, wire.size());
  return std::string(body);
}

// --- Request round-trips -----------------------------------------------------

TEST(FrameCodec, PingRoundTrip) {
  std::string frame;
  EncodePingRequest(77, &frame);
  DecodedRequest req;
  ASSERT_TRUE(DecodeRequest(BodyOf(frame), &req).ok());
  EXPECT_EQ(req.op, WireOp::kPing);
  EXPECT_EQ(req.tag, 77u);
  EXPECT_TRUE(req.keys.empty());
}

TEST(FrameCodec, MultiPutRoundTripWithBinaryBytes) {
  const std::string key1("k\0ey", 4);  // Embedded NUL must survive.
  const std::string val1("v\xff\x00z", 4);
  std::vector<std::pair<std::string_view, std::string_view>> pairs = {
      {key1, val1}, {"", "empty-key-value"}, {"empty-value", ""}};
  std::string frame;
  EncodeMultiPutRequest(0xdeadbeefcafe, 0x123456789abcdef0ull, pairs, &frame);

  DecodedRequest req;
  ASSERT_TRUE(DecodeRequest(BodyOf(frame), &req).ok());
  EXPECT_EQ(req.op, WireOp::kMultiPut);
  EXPECT_EQ(req.tag, 0xdeadbeefcafeull);
  EXPECT_EQ(req.block, 0x123456789abcdef0ull);
  ASSERT_EQ(req.keys.size(), 3u);
  ASSERT_EQ(req.values.size(), 3u);
  EXPECT_EQ(req.keys[0], std::string_view(key1));
  EXPECT_EQ(req.values[0], std::string_view(val1));
  EXPECT_EQ(req.keys[1], "");
  EXPECT_EQ(req.values[1], "empty-key-value");
  EXPECT_EQ(req.keys[2], "empty-value");
  EXPECT_EQ(req.values[2], "");
}

TEST(FrameCodec, KeysRequestRoundTrip) {
  for (WireOp op : {WireOp::kMultiGet, WireOp::kMultiDelete}) {
    std::vector<std::string_view> keys = {"alpha", "", "gamma"};
    std::string frame;
    EncodeKeysRequest(op, 9, 42, keys, &frame);
    DecodedRequest req;
    ASSERT_TRUE(DecodeRequest(BodyOf(frame), &req).ok());
    EXPECT_EQ(req.op, op);
    EXPECT_EQ(req.tag, 9u);
    EXPECT_EQ(req.block, 42u);
    ASSERT_EQ(req.keys.size(), 3u);
    EXPECT_EQ(req.keys[0], "alpha");
    EXPECT_EQ(req.keys[1], "");
    EXPECT_EQ(req.keys[2], "gamma");
    EXPECT_TRUE(req.values.empty());
  }
}

TEST(FrameCodec, SeveralFramesPackIntoOneBuffer) {
  std::string buf;
  EncodePingRequest(1, &buf);
  EncodeKeysRequest(WireOp::kMultiGet, 2, 7, {"k"}, &buf);
  EncodePingRequest(3, &buf);

  size_t offset = 0;
  std::string_view body;
  std::vector<uint64_t> tags;
  while (NextFrame(buf, &offset, &body).ok()) {
    DecodedRequest req;
    ASSERT_TRUE(DecodeRequest(body, &req).ok());
    tags.push_back(req.tag);
  }
  EXPECT_EQ(offset, buf.size());
  EXPECT_EQ(tags, (std::vector<uint64_t>{1, 2, 3}));
}

// --- Response round-trips ----------------------------------------------------

TEST(FrameCodec, ResponseRoundTripSplitsMetaFromPayload) {
  const std::string v0 = "value-zero";
  const std::string v2(300, 'x');  // Length needs more than one byte.
  ResponseBuilder builder(WireOp::kMultiGet, 55, 3);
  builder.AddItem(StatusCode::kOk, v0);
  builder.AddItem(StatusCode::kNotFound);
  builder.AddItem(StatusCode::kOk, v2);
  WireResponse resp = std::move(builder).Finish();

  // The head owns only framing + meta; payload bytes stay views.
  EXPECT_EQ(resp.head.size(),
            kLenPrefixBytes + kResponseHeaderBytes + 3 * kResponseMetaBytes);
  ASSERT_EQ(resp.payloads.size(), 2u);
  EXPECT_EQ(resp.payloads[0].data(), v0.data());  // Same bytes, not a copy.
  EXPECT_EQ(resp.payloads[1].data(), v2.data());
  EXPECT_EQ(resp.TotalBytes(), resp.head.size() + v0.size() + v2.size());

  DecodedResponse out;
  ASSERT_TRUE(DecodeResponse(FlattenResponse(resp), &out).ok());
  EXPECT_EQ(out.op, WireOp::kMultiGet);
  EXPECT_EQ(out.tag, 55u);
  EXPECT_EQ(out.overall, StatusCode::kOk);
  ASSERT_EQ(out.codes.size(), 3u);
  EXPECT_EQ(out.codes[0], StatusCode::kOk);
  EXPECT_EQ(out.codes[1], StatusCode::kNotFound);
  EXPECT_EQ(out.codes[2], StatusCode::kOk);
  ASSERT_EQ(out.values.size(), 3u);
  EXPECT_EQ(out.values[0], v0);
  EXPECT_EQ(out.values[1], "");
  EXPECT_EQ(out.values[2], v2);
}

TEST(FrameCodec, ErrorResponseCarriesOverallCode) {
  WireResponse resp = ErrorResponse(WireOp::kMultiPut, 8, StatusCode::kUnavailable);
  DecodedResponse out;
  ASSERT_TRUE(DecodeResponse(FlattenResponse(resp), &out).ok());
  EXPECT_EQ(out.op, WireOp::kMultiPut);
  EXPECT_EQ(out.tag, 8u);
  EXPECT_EQ(out.overall, StatusCode::kUnavailable);
  EXPECT_TRUE(out.codes.empty());
}

// --- Stream reassembly and malformed input -----------------------------------

TEST(FrameCodec, NextFrameReportsShortReads) {
  std::string frame;
  EncodeKeysRequest(WireOp::kMultiGet, 1, 2, {"some-key"}, &frame);
  // Every strict prefix is "short", never invalid, never a crash.
  for (size_t len = 0; len < frame.size(); ++len) {
    size_t offset = 0;
    std::string_view body;
    const Status st =
        NextFrame(std::string_view(frame.data(), len), &offset, &body);
    EXPECT_EQ(st.code(), StatusCode::kUnavailable) << "prefix " << len;
    EXPECT_EQ(offset, 0u);
  }
}

TEST(FrameCodec, NextFrameRejectsCorruptLengths) {
  for (uint32_t body_len : {uint32_t{0}, static_cast<uint32_t>(kMaxFrameBytes + 1),
                            uint32_t{0xffffffff}}) {
    std::string buf(4, '\0');
    std::memcpy(buf.data(), &body_len, 4);
    buf.append(16, 'x');
    size_t offset = 0;
    std::string_view body;
    EXPECT_EQ(NextFrame(buf, &offset, &body).code(),
              StatusCode::kInvalidArgument)
        << body_len;
  }
}

TEST(FrameCodec, DecodeRejectsTruncatedBodies) {
  std::string frame;
  EncodeMultiPutRequest(3, 4, {{"key-one", "value-one"}, {"k2", "v2"}}, &frame);
  const std::string_view body = BodyOf(frame);
  for (size_t len = 0; len < body.size(); ++len) {
    DecodedRequest req;
    EXPECT_FALSE(DecodeRequest(body.substr(0, len), &req).ok())
        << "prefix " << len;
  }

  ResponseBuilder builder(WireOp::kMultiGet, 5, 1);
  builder.AddItem(StatusCode::kOk, "payload");
  const std::string resp_body = FlattenResponse(std::move(builder).Finish());
  for (size_t len = 0; len < resp_body.size(); ++len) {
    DecodedResponse out;
    EXPECT_FALSE(
        DecodeResponse(std::string_view(resp_body).substr(0, len), &out).ok())
        << "prefix " << len;
  }
}

TEST(FrameCodec, DecodeRejectsTrailingGarbage) {
  std::string frame;
  EncodeKeysRequest(WireOp::kMultiDelete, 1, 2, {"k"}, &frame);
  std::string body(BodyOf(frame));
  body.push_back('!');
  DecodedRequest req;
  EXPECT_FALSE(DecodeRequest(body, &req).ok());
}

TEST(FrameCodec, DecodeRejectsWrongMagicVersionOpcode) {
  std::string frame;
  EncodePingRequest(1, &frame);
  const std::string_view good = BodyOf(frame);

  std::string bad(good);
  bad[0] ^= 0x01;  // Magic.
  DecodedRequest req;
  EXPECT_FALSE(DecodeRequest(bad, &req).ok());

  bad.assign(good);
  bad[4] = 99;  // Version.
  EXPECT_FALSE(DecodeRequest(bad, &req).ok());

  bad.assign(good);
  bad[5] = 0x7f;  // Opcode.
  EXPECT_FALSE(DecodeRequest(bad, &req).ok());

  // A response body is not a request body and vice versa.
  ResponseBuilder builder(WireOp::kPing, 1, 0);
  const std::string resp_body = FlattenResponse(std::move(builder).Finish());
  EXPECT_FALSE(DecodeRequest(resp_body, &req).ok());
  DecodedResponse out;
  EXPECT_FALSE(DecodeResponse(good, &out).ok());
}

// Seeded garbage: random bodies must decode to an error, never crash or
// overread (ASan guards the latter).
TEST(FrameCodec, FuzzRandomBodiesNeverCrash) {
  Rng rng(0xf0a2);
  for (int iter = 0; iter < 4000; ++iter) {
    std::string body(rng.NextBelow(128), '\0');
    for (char& c : body) {
      c = static_cast<char>(rng.NextBelow(256));
    }
    DecodedRequest req;
    DecodedResponse resp;
    (void)DecodeRequest(body, &req);
    (void)DecodeResponse(body, &resp);
  }
}

// Seeded mutations of VALID frames: flip a few bytes, decode must either
// fail cleanly or produce internally consistent output.
TEST(FrameCodec, FuzzMutatedFramesNeverCrash) {
  std::string frame;
  EncodeMultiPutRequest(
      11, 22, {{"alpha", "one"}, {"beta", std::string(64, 'b')}}, &frame);
  const std::string_view orig = BodyOf(frame);

  Rng rng(0xbead);
  for (int iter = 0; iter < 4000; ++iter) {
    std::string body(orig);
    const size_t flips = 1 + rng.NextBelow(4);
    for (size_t f = 0; f < flips; ++f) {
      body[rng.NextBelow(body.size())] ^=
          static_cast<char>(1 + rng.NextBelow(255));
    }
    DecodedRequest req;
    if (DecodeRequest(body, &req).ok()) {
      // Lengths the decoder accepted must stay inside the buffer.
      for (std::string_view k : req.keys) {
        EXPECT_GE(k.data(), body.data());
        EXPECT_LE(k.data() + k.size(), body.data() + body.size());
      }
      for (std::string_view v : req.values) {
        EXPECT_GE(v.data(), body.data());
        EXPECT_LE(v.data() + v.size(), body.data() + body.size());
      }
    }
  }
}

// --- CompletionWindow --------------------------------------------------------

TEST(CompletionWindow, TagsAreSubmissionOrdered) {
  CompletionWindow window(0);
  EXPECT_EQ(window.Begin(), 1u);
  EXPECT_EQ(window.Begin(), 2u);
  EXPECT_EQ(window.Begin(), 3u);
  EXPECT_EQ(window.in_flight(), 3u);
  window.Complete(2, Status::Ok());
  window.Complete(3, Status::Ok());
  window.Complete(1, Status::Ok());
  EXPECT_TRUE(window.Drain().ok());
  EXPECT_EQ(window.max_in_flight(), 3u);
}

TEST(CompletionWindow, DrainReportsEarliestFailureNotFirstArrival) {
  CompletionWindow window(0);
  const uint64_t t1 = window.Begin();
  const uint64_t t2 = window.Begin();
  const uint64_t t3 = window.Begin();
  // Failures complete in reverse arrival order; Drain must still pick t1.
  window.Complete(t3, Unavailable("late submission failed"));
  window.Complete(t1, Timeout("earliest submission failed"));
  window.Complete(t2, Status::Ok());
  const Status st = window.Drain();
  EXPECT_EQ(st.code(), StatusCode::kTimeout);

  // Drain leaves the set for per-tag resolution; TakeErrors consumes it.
  std::vector<TaggedStatus> errors = window.TakeErrors();
  ASSERT_EQ(errors.size(), 2u);
  EXPECT_EQ(errors[0].tag, t1);
  EXPECT_EQ(errors[0].status.code(), StatusCode::kTimeout);
  EXPECT_EQ(errors[1].tag, t3);
  EXPECT_EQ(errors[1].status.code(), StatusCode::kUnavailable);
  EXPECT_TRUE(window.TakeErrors().empty());
}

TEST(CompletionWindow, TakeErrorsSortedBySubmission) {
  CompletionWindow window(0);
  std::vector<uint64_t> tags;
  for (int i = 0; i < 6; ++i) {
    tags.push_back(window.Begin());
  }
  window.Complete(tags[5], Unavailable("e5"));
  window.Complete(tags[1], Unavailable("e1"));
  window.Complete(tags[3], Unavailable("e3"));
  window.Complete(tags[0], Status::Ok());
  window.Complete(tags[2], Status::Ok());
  window.Complete(tags[4], Status::Ok());
  ASSERT_TRUE(window.Drain().code() == StatusCode::kUnavailable);

  std::vector<TaggedStatus> errors = window.TakeErrors();
  ASSERT_EQ(errors.size(), 3u);
  EXPECT_EQ(errors[0].tag, tags[1]);
  EXPECT_EQ(errors[1].tag, tags[3]);
  EXPECT_EQ(errors[2].tag, tags[5]);
  EXPECT_TRUE(window.Drain().ok());  // Fresh epoch after TakeErrors.
}

TEST(CompletionWindow, DepthBoundsOutstanding) {
  CompletionWindow window(2);
  const uint64_t t1 = window.Begin();
  const uint64_t t2 = window.Begin();

  std::atomic<bool> third_began{false};
  std::thread blocked([&] {
    const uint64_t t3 = window.Begin();  // Must wait for a slot.
    third_began.store(true);
    window.Complete(t3, Status::Ok());
  });
  // The third Begin cannot pass while two are outstanding.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(third_began.load());

  window.Complete(t1, Status::Ok());
  blocked.join();
  EXPECT_TRUE(third_began.load());
  window.Complete(t2, Status::Ok());
  EXPECT_TRUE(window.Drain().ok());
  EXPECT_EQ(window.max_in_flight(), 2u);
}

// --- FrameReader: cached-header stream reassembly ----------------------------

TEST(FrameCodec, FrameReaderDeliversFramesAcrossPartialReceives) {
  std::string stream;
  EncodeKeysRequest(WireOp::kMultiGet, 7, 42, {"alpha", "beta"}, &stream);
  EncodePingRequest(9, &stream);

  // Feed the stream one byte at a time: the reader must report short reads
  // until each frame completes, and the cached header must carry across
  // every intermediate growth.
  FrameReader reader;
  std::string buf;
  std::vector<std::string> bodies;
  for (char c : stream) {
    buf.push_back(c);
    std::string_view body;
    const Status st = reader.Next(buf, &body);
    if (st.ok()) {
      bodies.emplace_back(body);
    } else {
      ASSERT_EQ(st.code(), StatusCode::kUnavailable);
    }
  }
  ASSERT_EQ(bodies.size(), 2u);
  EXPECT_EQ(reader.offset(), stream.size());

  DecodedRequest req;
  ASSERT_TRUE(DecodeRequest(bodies[0], &req).ok());
  EXPECT_EQ(req.op, WireOp::kMultiGet);
  EXPECT_EQ(req.tag, 7u);
  EXPECT_EQ(req.block, 42u);
  ASSERT_TRUE(DecodeRequest(bodies[1], &req).ok());
  EXPECT_EQ(req.op, WireOp::kPing);
}

TEST(FrameCodec, FrameReaderRebaseKeepsCachedHeaderThroughCompaction) {
  std::string first, second;
  EncodePingRequest(1, &first);
  EncodeKeysRequest(WireOp::kMultiDelete, 2, 5, {"k"}, &second);

  // Buffer holds the whole first frame plus ONLY the length word of the
  // second — the reader caches the second header, then the consumed prefix
  // is compacted away underneath it.
  FrameReader reader;
  std::string buf = first + second.substr(0, kLenPrefixBytes);
  std::string_view body;
  ASSERT_TRUE(reader.Next(buf, &body).ok());
  EXPECT_EQ(reader.Next(buf, &body).code(), StatusCode::kUnavailable);

  const size_t consumed = reader.offset();
  ASSERT_EQ(consumed, first.size());
  buf.erase(0, consumed);
  reader.Rebase(consumed);
  EXPECT_EQ(reader.offset(), 0u);

  buf.append(second.substr(kLenPrefixBytes));
  ASSERT_TRUE(reader.Next(buf, &body).ok());
  DecodedRequest req;
  ASSERT_TRUE(DecodeRequest(body, &req).ok());
  EXPECT_EQ(req.op, WireOp::kMultiDelete);
  EXPECT_EQ(req.tag, 2u);
}

TEST(FrameCodec, FrameReaderRejectsCorruptLengths) {
  FrameReader reader;
  std::string_view body;

  std::string zero(kLenPrefixBytes, '\0');
  EXPECT_EQ(reader.Next(zero, &body).code(), StatusCode::kInvalidArgument);

  FrameReader reader2;
  const uint32_t huge = static_cast<uint32_t>(kMaxFrameBytes) + 1;
  std::string oversized(reinterpret_cast<const char*>(&huge), 4);
  EXPECT_EQ(reader2.Next(oversized, &body).code(),
            StatusCode::kInvalidArgument);
}

// --- PeekRequestHeader: routing without decoding -----------------------------

TEST(FrameCodec, PeekRequestHeaderMatchesFullDecode) {
  std::string frame;
  EncodeMultiPutRequest(0xBEEF, BlockId{3, 9}.Packed(),
                        {{"key", "value"}}, &frame);
  const std::string_view body = BodyOf(frame);

  WireOp op = WireOp::kPing;
  uint64_t tag = 0, block = 0;
  ASSERT_TRUE(PeekRequestHeader(body, &op, &tag, &block).ok());

  DecodedRequest req;
  ASSERT_TRUE(DecodeRequest(body, &req).ok());
  EXPECT_EQ(op, req.op);
  EXPECT_EQ(tag, req.tag);
  EXPECT_EQ(block, req.block);
}

TEST(FrameCodec, PeekRequestHeaderRejectsGarbage) {
  WireOp op = WireOp::kPing;
  uint64_t tag = 0, block = 0;

  // Too short to hold a request header.
  EXPECT_FALSE(PeekRequestHeader("tiny", &op, &tag, &block).ok());

  // Right size, wrong magic.
  std::string junk(kRequestHeaderBytes, 'x');
  EXPECT_FALSE(PeekRequestHeader(junk, &op, &tag, &block).ok());

  // Valid frame with the opcode byte corrupted.
  std::string frame;
  EncodePingRequest(1, &frame);
  frame[kLenPrefixBytes + 5] = 0x7f;
  EXPECT_FALSE(
      PeekRequestHeader(BodyOf(frame), &op, &tag, &block).ok());
}

}  // namespace
}  // namespace jiffy
