// Integration tests for the programming models on Jiffy (§5): MapReduce
// with shuffle files, Dryad-style dataflow with file/queue channels, and
// Piccolo with accumulator tables + checkpoint/restore.

#include <gtest/gtest.h>

#include <set>

#include "src/frameworks/dataflow.h"
#include "src/frameworks/mapreduce.h"
#include "src/frameworks/piccolo.h"
#include "src/workload/text.h"

namespace jiffy {
namespace {

class FrameworksTest : public ::testing::Test {
 protected:
  FrameworksTest() {
    JiffyCluster::Options opts;
    opts.config.num_memory_servers = 4;
    opts.config.blocks_per_server = 128;
    opts.config.block_size_bytes = 8192;
    opts.config.lease_duration = 60 * kSecond;
    cluster_ = std::make_unique<JiffyCluster>(opts);
    client_ = std::make_unique<JiffyClient>(cluster_.get());
  }

  std::unique_ptr<JiffyCluster> cluster_;
  std::unique_ptr<JiffyClient> client_;
};

MapReduceJob::MapFn WordCountMap() {
  return [](const std::string& record) {
    std::vector<std::pair<std::string, std::string>> out;
    for (const auto& word : SplitWords(record)) {
      out.emplace_back(word, "1");
    }
    return out;
  };
}

MapReduceJob::ReduceFn WordCountReduce() {
  return [](const std::string& key, const std::vector<std::string>& values) {
    (void)key;
    uint64_t sum = 0;
    for (const auto& v : values) {
      sum += std::stoull(v);
    }
    return std::to_string(sum);
  };
}

TEST_F(FrameworksTest, MapReduceWordCount) {
  MapReduceJob::Options opts;
  opts.num_map_tasks = 4;
  opts.num_reduce_tasks = 3;
  MapReduceJob job(client_.get(), "wc", opts);
  const std::vector<std::string> inputs = {
      "the quick brown fox", "the lazy dog", "the fox jumps",
      "dog and fox again"};
  auto result = job.Run(inputs, WordCountMap(), WordCountReduce());
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ((*result)["the"], "3");
  EXPECT_EQ((*result)["fox"], "3");
  EXPECT_EQ((*result)["dog"], "2");
  EXPECT_EQ((*result)["jumps"], "1");
  EXPECT_GT(job.shuffle_bytes(), 0u);
  // The job deregistered: all blocks returned to the pool.
  EXPECT_EQ(cluster_->allocator()->allocated_count(), 0u);
}

TEST_F(FrameworksTest, MapReduceSequentialMatchesParallel) {
  const std::vector<std::string> inputs = {"a b c", "a a", "c b a"};
  MapReduceJob::Options par;
  MapReduceJob::Options seq;
  seq.parallel = false;
  auto r1 = MapReduceJob(client_.get(), "wc-par", par)
                .Run(inputs, WordCountMap(), WordCountReduce());
  auto r2 = MapReduceJob(client_.get(), "wc-seq", seq)
                .Run(inputs, WordCountMap(), WordCountReduce());
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(*r1, *r2);
}

TEST_F(FrameworksTest, MapReduceRecoversFromTaskFailure) {
  MapReduceJob::Options opts;
  opts.num_map_tasks = 3;
  opts.num_reduce_tasks = 2;
  opts.fail_map_task_once = 1;  // Task 1 dies once; the master re-runs it.
  MapReduceJob job(client_.get(), "wc-fail", opts);
  const std::vector<std::string> inputs = {"x y", "y z", "z x"};
  auto result = job.Run(inputs, WordCountMap(), WordCountReduce());
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ((*result)["x"], "2");
  EXPECT_EQ((*result)["y"], "2");
  EXPECT_EQ((*result)["z"], "2");
  EXPECT_GT(job.map_attempts(), 3);
}

TEST_F(FrameworksTest, MapReduceLargeInput) {
  SentenceGenerator gen(200, 0.9, 17);
  std::vector<std::string> inputs;
  for (int i = 0; i < 200; ++i) {
    inputs.push_back(gen.Sentence());
  }
  MapReduceJob::Options opts;
  opts.num_map_tasks = 8;
  opts.num_reduce_tasks = 4;
  MapReduceJob job(client_.get(), "wc-big", opts);
  auto result = job.Run(inputs, WordCountMap(), WordCountReduce());
  ASSERT_TRUE(result.ok()) << result.status();
  // Cross-check against a local count.
  std::map<std::string, uint64_t> expect;
  for (const auto& s : inputs) {
    for (const auto& w : SplitWords(s)) {
      expect[w]++;
    }
  }
  ASSERT_EQ(result->size(), expect.size());
  for (const auto& [w, c] : expect) {
    EXPECT_EQ((*result)[w], std::to_string(c)) << w;
  }
}

TEST_F(FrameworksTest, MapReduceCombinerCutsShuffleTraffic) {
  SentenceGenerator gen(50, 1.1, 3);  // Small, skewed vocab: combining pays.
  std::vector<std::string> inputs;
  for (int i = 0; i < 150; ++i) {
    inputs.push_back(gen.Sentence());
  }
  MapReduceJob::Options plain;
  MapReduceJob::Options combined;
  combined.combiner = WordCountReduce();
  MapReduceJob job_plain(client_.get(), "wc-plain", plain);
  MapReduceJob job_combined(client_.get(), "wc-comb", combined);
  auto r1 = job_plain.Run(inputs, WordCountMap(), WordCountReduce());
  auto r2 = job_combined.Run(inputs, WordCountMap(), WordCountReduce());
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(*r1, *r2);  // Same answer...
  // ...with significantly less shuffle traffic.
  EXPECT_LT(job_combined.shuffle_bytes(), job_plain.shuffle_bytes() / 2);
}

TEST_F(FrameworksTest, MapReduceCustomPartitioner) {
  // Route every key to partition 0: one reducer sees everything, output
  // unchanged.
  MapReduceJob::Options opts;
  opts.num_reduce_tasks = 4;
  opts.partitioner = [](const std::string& key, int r) {
    (void)key;
    (void)r;
    return 0;
  };
  MapReduceJob job(client_.get(), "wc-part", opts);
  const std::vector<std::string> inputs = {"a b", "b c", "c a"};
  auto result = job.Run(inputs, WordCountMap(), WordCountReduce());
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ((*result)["a"], "2");
  EXPECT_EQ((*result)["b"], "2");
  EXPECT_EQ((*result)["c"], "2");
}

TEST_F(FrameworksTest, DataflowFileChannelOrdering) {
  // producer --file--> transformer --file--> sink.
  DataflowGraph graph("df1");
  std::string sink_saw;
  ASSERT_TRUE(graph
                  .AddVertex("producer",
                             [](VertexContext& ctx) -> Status {
                               auto r = ctx.OutputFile("transformer")
                                            ->Append("1,2,3,4");
                               return r.ok() ? Status::Ok() : r.status();
                             })
                  .ok());
  ASSERT_TRUE(graph
                  .AddVertex("transformer",
                             [](VertexContext& ctx) -> Status {
                               auto in = ctx.InputFile("producer")->Read(0, 100);
                               if (!in.ok()) {
                                 return in.status();
                               }
                               std::string doubled;
                               for (char c : *in) {
                                 if (c != ',') {
                                   doubled += c;
                                   doubled += c;
                                 }
                               }
                               auto w = ctx.OutputFile("sink")->Append(doubled);
                               return w.ok() ? Status::Ok() : w.status();
                             })
                  .ok());
  ASSERT_TRUE(graph
                  .AddVertex("sink",
                             [&](VertexContext& ctx) -> Status {
                               auto in = ctx.InputFile("transformer")->Read(0, 100);
                               if (!in.ok()) {
                                 return in.status();
                               }
                               sink_saw = *in;
                               return Status::Ok();
                             })
                  .ok());
  ASSERT_TRUE(graph.AddChannel("producer", "transformer", ChannelType::kFile).ok());
  ASSERT_TRUE(graph.AddChannel("transformer", "sink", ChannelType::kFile).ok());
  auto st = graph.Run(client_.get());
  ASSERT_TRUE(st.ok()) << st;
  EXPECT_EQ(sink_saw, "11223344");
}

TEST_F(FrameworksTest, DataflowQueueChannelStreams) {
  // Streaming producer/consumer overlap on a queue channel.
  DataflowGraph graph("df2");
  std::vector<std::string> received;
  ASSERT_TRUE(graph
                  .AddVertex("src",
                             [](VertexContext& ctx) -> Status {
                               for (int i = 0; i < 20; ++i) {
                                 JIFFY_RETURN_IF_ERROR(
                                     ctx.OutputQueue("snk")->Enqueue(
                                         std::to_string(i)));
                               }
                               return Status::Ok();
                             })
                  .ok());
  ASSERT_TRUE(graph
                  .AddVertex("snk",
                             [&](VertexContext& ctx) -> Status {
                               for (;;) {
                                 auto item = ctx.InputQueue("src")->Dequeue();
                                 if (item.ok()) {
                                   received.push_back(*item);
                                   continue;
                                 }
                                 if (item.status().code() !=
                                     StatusCode::kNotFound) {
                                   return item.status();
                                 }
                                 if (ctx.UpstreamDone("src")) {
                                   return Status::Ok();
                                 }
                                 std::this_thread::sleep_for(
                                     std::chrono::milliseconds(1));
                               }
                             })
                  .ok());
  ASSERT_TRUE(graph.AddChannel("src", "snk", ChannelType::kQueue).ok());
  auto st = graph.Run(client_.get());
  ASSERT_TRUE(st.ok()) << st;
  ASSERT_EQ(received.size(), 20u);
  EXPECT_EQ(received.front(), "0");
  EXPECT_EQ(received.back(), "19");
}

TEST_F(FrameworksTest, DataflowDiamondTopology) {
  // src fans out to two workers whose outputs join at a sink.
  DataflowGraph graph("df3");
  std::string joined;
  auto pass = [](const char* from, const char* to, int factor) {
    return [from, to, factor](VertexContext& ctx) -> Status {
      auto in = ctx.InputFile(from)->Read(0, 100);
      if (!in.ok()) {
        return in.status();
      }
      std::string out;
      for (int i = 0; i < factor; ++i) {
        out += *in;
      }
      auto w = ctx.OutputFile(to)->Append(out);
      return w.ok() ? Status::Ok() : w.status();
    };
  };
  ASSERT_TRUE(graph
                  .AddVertex("src",
                             [](VertexContext& ctx) -> Status {
                               auto r = ctx.OutputFile("left")->Append("ab");
                               if (!r.ok()) {
                                 return r.status();
                               }
                               auto r2 = ctx.OutputFile("right")->Append("cd");
                               return r2.ok() ? Status::Ok() : r2.status();
                             })
                  .ok());
  ASSERT_TRUE(graph.AddVertex("left", pass("src", "sink", 1)).ok());
  ASSERT_TRUE(graph.AddVertex("right", pass("src", "sink", 2)).ok());
  ASSERT_TRUE(graph
                  .AddVertex("sink",
                             [&](VertexContext& ctx) -> Status {
                               auto a = ctx.InputFile("left")->Read(0, 100);
                               auto b = ctx.InputFile("right")->Read(0, 100);
                               if (!a.ok() || !b.ok()) {
                                 return a.ok() ? b.status() : a.status();
                               }
                               joined = *a + "|" + *b;
                               return Status::Ok();
                             })
                  .ok());
  ASSERT_TRUE(graph.AddChannel("src", "left", ChannelType::kFile).ok());
  ASSERT_TRUE(graph.AddChannel("src", "right", ChannelType::kFile).ok());
  ASSERT_TRUE(graph.AddChannel("left", "sink", ChannelType::kFile).ok());
  ASSERT_TRUE(graph.AddChannel("right", "sink", ChannelType::kFile).ok());
  auto st = graph.Run(client_.get());
  ASSERT_TRUE(st.ok()) << st;
  EXPECT_EQ(joined, "ab|cdcd");
}

TEST_F(FrameworksTest, DataflowVertexErrorPropagates) {
  DataflowGraph graph("df4");
  ASSERT_TRUE(graph
                  .AddVertex("bad",
                             [](VertexContext&) -> Status {
                               return Internal("vertex exploded");
                             })
                  .ok());
  auto st = graph.Run(client_.get());
  EXPECT_EQ(st.code(), StatusCode::kInternal);
}

TEST_F(FrameworksTest, PiccoloAccumulatorResolvesConcurrentUpdates) {
  PiccoloController piccolo(client_.get(), "pic1");
  auto sum_acc = [](std::string_view old_value, std::string_view update) {
    const uint64_t a =
        old_value.empty() ? 0 : std::stoull(std::string(old_value));
    return std::to_string(a + std::stoull(std::string(update)));
  };
  auto table = piccolo.CreateTable("counts", sum_acc);
  ASSERT_TRUE(table.ok()) << table.status();
  // 4 kernels × 100 increments on shared keys.
  auto st = piccolo.RunKernels(4, [&](int kernel_id) -> Status {
    (void)kernel_id;
    for (int i = 0; i < 100; ++i) {
      JIFFY_RETURN_IF_ERROR(
          (*table)->Update("key" + std::to_string(i % 10), "1"));
    }
    return Status::Ok();
  });
  ASSERT_TRUE(st.ok()) << st;
  for (int k = 0; k < 10; ++k) {
    auto v = (*table)->Get("key" + std::to_string(k));
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(*v, "40");  // 4 kernels × 10 hits each.
  }
}

TEST_F(FrameworksTest, PiccoloCheckpointRestore) {
  auto acc = [](std::string_view old_value, std::string_view update) {
    return old_value.empty()
               ? std::string(update)
               : std::string(old_value) + "," + std::string(update);
  };
  {
    PiccoloController piccolo(client_.get(), "pic2");
    auto table = piccolo.CreateTable("state", acc);
    ASSERT_TRUE(table.ok());
    ASSERT_TRUE((*table)->Put("k1", "v1").ok());
    ASSERT_TRUE((*table)->Put("k2", "v2").ok());
    ASSERT_TRUE(piccolo.Checkpoint("state", "ckpt/state").ok());
  }  // Controller gone; job deregistered, memory released.
  EXPECT_EQ(cluster_->allocator()->allocated_count(), 0u);
  PiccoloController revived(client_.get(), "pic3");
  ASSERT_TRUE(revived.Restore("state", "ckpt/state", acc).ok());
  PiccoloTable* table = revived.Table("state");
  ASSERT_NE(table, nullptr);
  EXPECT_EQ(*table->Get("k1"), "v1");
  EXPECT_EQ(*table->Get("k2"), "v2");
}

}  // namespace
}  // namespace jiffy
