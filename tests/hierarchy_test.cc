// Unit tests for the per-job address DAG and lease propagation (§3.1, §3.2).
//
// The DAG used throughout matches the paper's running example (Fig 3/4):
//   T1→T5, T2→T5, T3→T7, T4→T6, T5→T7, T6→T7, T7→T8, T7→T9.

#include <gtest/gtest.h>

#include <algorithm>

#include "src/core/hierarchy.h"

namespace jiffy {
namespace {

constexpr DurationNs kLease = 1 * kSecond;

std::vector<std::pair<std::string, std::vector<std::string>>> PaperDag() {
  return {
      {"T1", {}},           {"T2", {}},           {"T3", {}},
      {"T4", {}},           {"T5", {"T1", "T2"}}, {"T6", {"T4"}},
      {"T7", {"T3", "T5", "T6"}},                 {"T8", {"T7"}},
      {"T9", {"T7"}},
  };
}

JobHierarchy MakePaperHierarchy() {
  JobHierarchy h("job1", 0, kLease);
  auto st = h.CreateFromDag(PaperDag(), /*now=*/0, kLease);
  EXPECT_TRUE(st.ok()) << st;
  return h;
}

TEST(HierarchyTest, CreateNodeBasics) {
  JobHierarchy h("j", 0, kLease);
  EXPECT_TRUE(h.CreateNode("a", {}, 0, kLease).ok());
  EXPECT_TRUE(h.CreateNode("b", {"a"}, 0, kLease).ok());
  EXPECT_TRUE(h.HasNode("a"));
  EXPECT_TRUE(h.HasNode("b"));
  EXPECT_EQ(h.NodeCount(), 2u);
}

TEST(HierarchyTest, DuplicateNodeRejected) {
  JobHierarchy h("j", 0, kLease);
  ASSERT_TRUE(h.CreateNode("a", {}, 0, kLease).ok());
  EXPECT_EQ(h.CreateNode("a", {}, 0, kLease).code(),
            StatusCode::kAlreadyExists);
}

TEST(HierarchyTest, UnknownParentRejected) {
  JobHierarchy h("j", 0, kLease);
  EXPECT_EQ(h.CreateNode("b", {"nope"}, 0, kLease).code(),
            StatusCode::kInvalidArgument);
}

TEST(HierarchyTest, SelfEdgeRejected) {
  JobHierarchy h("j", 0, kLease);
  EXPECT_EQ(h.CreateNode("a", {"a"}, 0, kLease).code(),
            StatusCode::kInvalidArgument);
}

TEST(HierarchyTest, BadNameRejected) {
  JobHierarchy h("j", 0, kLease);
  EXPECT_EQ(h.CreateNode("a b", {}, 0, kLease).code(),
            StatusCode::kInvalidArgument);
}

TEST(HierarchyTest, CreateFromDagOutOfOrder) {
  // Children listed before parents: the topological insertion must cope.
  JobHierarchy h("j", 0, kLease);
  auto st = h.CreateFromDag(
      {{"c", {"b"}}, {"b", {"a"}}, {"a", {}}}, 0, kLease);
  EXPECT_TRUE(st.ok()) << st;
  EXPECT_EQ(h.NodeCount(), 3u);
}

TEST(HierarchyTest, CreateFromDagDetectsCycle) {
  JobHierarchy h("j", 0, kLease);
  auto st = h.CreateFromDag({{"a", {"b"}}, {"b", {"a"}}}, 0, kLease);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST(HierarchyTest, MultiParentNodeHasMultipleAddresses) {
  JobHierarchy h = MakePaperHierarchy();
  // T7 is reachable via T3, T1.T5, T2.T5, and T4.T6 (paper's B7_1 example).
  for (const char* path : {"T3/T7", "T1/T5/T7", "T2/T5/T7", "T4/T6/T7"}) {
    auto r = h.Resolve(*AddressPath::Parse(path));
    ASSERT_TRUE(r.ok()) << path << ": " << r.status();
    EXPECT_EQ((*r)->name, "T7");
  }
}

TEST(HierarchyTest, ResolveRejectsNonEdges) {
  JobHierarchy h = MakePaperHierarchy();
  // T1→T6 is not an edge.
  auto r = h.Resolve(*AddressPath::Parse("T1/T6"));
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(HierarchyTest, ResolveUnknownTask) {
  JobHierarchy h = MakePaperHierarchy();
  EXPECT_EQ(h.Resolve(*AddressPath::Parse("T42")).status().code(),
            StatusCode::kNotFound);
}

TEST(HierarchyTest, LeaseRenewalMatchesPaperExample) {
  // Renewing T7 renews T7, its immediate parents T3/T5/T6, and descendants
  // T8/T9 — but NOT T1, T2, T4 (paper §3.2 example, Fig 5).
  JobHierarchy h = MakePaperHierarchy();
  auto renewed = h.RenewLease("T7", /*now=*/500);
  ASSERT_TRUE(renewed.ok());
  std::vector<std::string> got = **renewed;
  std::sort(got.begin(), got.end());
  const std::vector<std::string> want = {"T3", "T5", "T6", "T7", "T8", "T9"};
  EXPECT_EQ(got, want);
  for (const char* name : {"T3", "T5", "T6", "T7", "T8", "T9"}) {
    EXPECT_EQ((*h.GetNode(name))->lease_renewed_at, 500) << name;
  }
  for (const char* name : {"T1", "T2", "T4"}) {
    EXPECT_EQ((*h.GetNode(name))->lease_renewed_at, 0) << name;
  }
}

TEST(HierarchyTest, RenewLeaseUnknownTask) {
  JobHierarchy h = MakePaperHierarchy();
  EXPECT_EQ(h.RenewLease("TX", 0).status().code(), StatusCode::kNotFound);
}

TEST(HierarchyTest, CollectExpiredRespectsLeaseDuration) {
  JobHierarchy h = MakePaperHierarchy();
  // At t = lease (inclusive boundary): nothing expired yet.
  EXPECT_TRUE(h.CollectExpired(kLease).empty());
  // Just past the lease: everything (created at t=0) expires.
  EXPECT_EQ(h.CollectExpired(kLease + 1).size(), 9u);
  // Renew T7's closure; the rest stay expired.
  ASSERT_TRUE(h.RenewLease("T7", kLease + 1).ok());
  auto expired = h.CollectExpired(kLease + 2);
  std::sort(expired.begin(), expired.end());
  const std::vector<std::string> want = {"T1", "T2", "T4"};
  EXPECT_EQ(expired, want);
}

TEST(HierarchyTest, ExpiredNodesNotRecollected) {
  JobHierarchy h("j", 0, kLease);
  ASSERT_TRUE(h.CreateNode("a", {}, 0, kLease).ok());
  auto expired = h.CollectExpired(kLease + 1);
  ASSERT_EQ(expired.size(), 1u);
  (*h.GetNode("a"))->expired = true;
  EXPECT_TRUE(h.CollectExpired(kLease + 1).empty());
}

TEST(HierarchyTest, PerPrefixLeaseOverride) {
  JobHierarchy h("j", 0, kLease);
  ASSERT_TRUE(h.CreateNode("fast", {}, 0, 100).ok());
  ASSERT_TRUE(h.CreateNode("slow", {}, 0, 10 * kSecond).ok());
  auto expired = h.CollectExpired(200);
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0], "fast");
}

TEST(HierarchyTest, MetadataAccounting) {
  JobHierarchy h = MakePaperHierarchy();
  // 9 tasks, no blocks yet: 9 × 64 B.
  EXPECT_EQ(h.MetadataBytes(), 9u * 64u);
  (*h.GetNode("T7"))->partition.entries.push_back(PartitionEntry{});
  EXPECT_EQ(h.MetadataBytes(), 9u * 64u + 8u);
  EXPECT_EQ(h.MappedBlockCount(), 1u);
}

TEST(HierarchyTest, RenewalOfRootRenewsAllDescendants) {
  JobHierarchy h = MakePaperHierarchy();
  auto renewed = h.RenewLease("T1", 777);
  ASSERT_TRUE(renewed.ok());
  // T1 → T5 → T7 → {T8, T9}: all renewed; T1 has no parents.
  std::vector<std::string> got = **renewed;
  std::sort(got.begin(), got.end());
  const std::vector<std::string> want = {"T1", "T5", "T7", "T8", "T9"};
  EXPECT_EQ(got, want);
}

}  // namespace
}  // namespace jiffy
