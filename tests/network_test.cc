// Unit tests for the network model / transport layer and persistent tiers.

#include <gtest/gtest.h>

#include "src/common/random.h"
#include "src/net/network.h"
#include "src/persistent/persistent_store.h"

namespace jiffy {
namespace {

TEST(NetworkModelTest, LoopbackIsFree) {
  NetworkModel m = NetworkModel::Loopback();
  EXPECT_EQ(m.RoundTrip(1 << 20, 1 << 20, nullptr), 0);
}

TEST(NetworkModelTest, LatencyScalesWithBytes) {
  NetworkModel m;
  m.base_latency = 100 * kMicrosecond;
  m.bandwidth_bytes_per_sec = 1e9;  // 1 GB/s.
  const DurationNs small = m.RoundTrip(64, 64, nullptr);
  const DurationNs large = m.RoundTrip(1 << 20, 64, nullptr);
  EXPECT_GT(large, small);
  // 1 MiB at 1 GB/s ≈ 1.05 ms of transfer on top of the base.
  EXPECT_NEAR(static_cast<double>(large - small), 1.048e6, 1e5);
}

TEST(NetworkModelTest, JitterBounded) {
  NetworkModel m;
  m.base_latency = 0;
  m.jitter = 1000;
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const DurationNs t = m.OneWay(0, &rng);
    EXPECT_GE(t, 0);
    EXPECT_LE(t, 1000);
  }
}

TEST(TransportTest, AccountsOpsBytesTime) {
  Transport t(NetworkModel::Ec2IntraDc(), Transport::Mode::kZero, nullptr);
  t.RoundTrip(1000, 500);
  t.RoundTrip(200, 100);
  EXPECT_EQ(t.total_ops(), 2u);
  EXPECT_EQ(t.total_bytes(), 1800u);
  EXPECT_GT(t.total_time(), 0);
}

TEST(TransportTest, ZeroModeDoesNotSleep) {
  RealClock* clock = RealClock::Instance();
  Transport t(NetworkModel::Ec2IntraDc(), Transport::Mode::kZero, clock);
  const TimeNs start = clock->Now();
  for (int i = 0; i < 100; ++i) {
    t.RoundTrip(1 << 20, 1 << 20);
  }
  // 100 × ~1.8 ms modeled; real elapsed must be far less.
  EXPECT_LT(clock->Now() - start, 50 * kMillisecond);
}

TEST(TransportTest, SleepModeSleeps) {
  RealClock* clock = RealClock::Instance();
  NetworkModel m;
  m.base_latency = 2 * kMillisecond;
  Transport t(m, Transport::Mode::kSleep, clock);
  const TimeNs start = clock->Now();
  t.RoundTrip(0, 0);
  EXPECT_GE(clock->Now() - start, 4 * kMillisecond);
}

TEST(PersistentStoreTest, PutGetDeleteList) {
  auto store = MakeLocalStore();
  ASSERT_TRUE(store->Put("a/1", "one").ok());
  ASSERT_TRUE(store->Put("a/2", "two").ok());
  ASSERT_TRUE(store->Put("b/1", "other").ok());
  EXPECT_EQ(*store->Get("a/1"), "one");
  EXPECT_TRUE(store->Exists("a/2"));
  EXPECT_FALSE(store->Exists("a/3"));
  auto listed = store->List("a/");
  ASSERT_EQ(listed.size(), 2u);
  EXPECT_EQ(listed[0], "a/1");
  EXPECT_EQ(store->total_bytes(), 11u);
  ASSERT_TRUE(store->Delete("a/1").ok());
  EXPECT_EQ(store->Get("a/1").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(store->total_bytes(), 8u);
}

TEST(PersistentStoreTest, OverwriteAdjustsBytes) {
  auto store = MakeLocalStore();
  ASSERT_TRUE(store->Put("k", "12345").ok());
  ASSERT_TRUE(store->Put("k", "12").ok());
  EXPECT_EQ(store->total_bytes(), 2u);
}

TEST(PersistentStoreTest, TierCostOrdering) {
  // S3 must be far slower than SSD at every size (this is what separates
  // Elasticache's spill penalty from Pocket's in Fig 9).
  auto s3 = MakeS3Store(Transport::Mode::kZero, nullptr);
  auto ssd = MakeSsdStore(Transport::Mode::kZero, nullptr);
  auto local = MakeLocalStore();
  for (size_t bytes : {size_t{64}, size_t{1} << 20, size_t{64} << 20}) {
    // Latency-dominated sizes gap by >10×; at bandwidth-dominated sizes the
    // gap narrows toward the 500/80 MB/s ratio but stays >4×.
    const int factor = bytes <= (1 << 20) ? 10 : 4;
    EXPECT_GT(s3->ReadCost(bytes), factor * ssd->ReadCost(bytes)) << bytes;
    EXPECT_GT(ssd->WriteCost(bytes), 0) << bytes;
    EXPECT_EQ(local->ReadCost(bytes), 0) << bytes;
  }
}

TEST(PersistentStoreTest, CostsAreDeterministic) {
  auto s3 = MakeS3Store(Transport::Mode::kZero, nullptr);
  EXPECT_EQ(s3->ReadCost(1 << 20), s3->ReadCost(1 << 20));
}

}  // namespace
}  // namespace jiffy
