// Unit tests for the notification plumbing (Listener, SubscriptionMap) and
// the per-DS registry.

#include <gtest/gtest.h>

#include <thread>

#include "src/block/notification.h"
#include "src/ds/registry.h"

namespace jiffy {
namespace {

TEST(ListenerTest, PushThenGet) {
  Listener l;
  l.Push({"put", "/j/t", "key1", 5});
  auto n = l.Get(10 * kMillisecond);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n->op, "put");
  EXPECT_EQ(n->payload, "key1");
}

TEST(ListenerTest, GetTimesOutWhenEmpty) {
  Listener l;
  auto n = l.Get(5 * kMillisecond);
  EXPECT_EQ(n.status().code(), StatusCode::kTimeout);
}

TEST(ListenerTest, TryGetNonBlocking) {
  Listener l;
  EXPECT_EQ(l.TryGet().status().code(), StatusCode::kTimeout);
  l.Push({"op", "", "", 0});
  EXPECT_TRUE(l.TryGet().ok());
}

TEST(ListenerTest, GetUnblocksOnConcurrentPush) {
  Listener l;
  std::thread pusher([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    l.Push({"late", "", "", 0});
  });
  auto n = l.Get(2 * kSecond);
  pusher.join();
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n->op, "late");
}

TEST(ListenerTest, FifoDelivery) {
  Listener l;
  for (int i = 0; i < 5; ++i) {
    l.Push({"op", "", std::to_string(i), 0});
  }
  EXPECT_EQ(l.Pending(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(l.TryGet()->payload, std::to_string(i));
  }
}

TEST(SubscriptionMapTest, PublishReachesOnlyMatchingOp) {
  SubscriptionMap subs;
  auto put_listener = subs.Subscribe("put");
  auto del_listener = subs.Subscribe("delete");
  subs.Publish({"put", "/j/t", "k", 0});
  EXPECT_EQ(put_listener->Pending(), 1u);
  EXPECT_EQ(del_listener->Pending(), 0u);
}

TEST(SubscriptionMapTest, FanOutToAllSubscribers) {
  SubscriptionMap subs;
  auto a = subs.Subscribe("enqueue");
  auto b = subs.Subscribe("enqueue");
  subs.Publish({"enqueue", "", "", 0});
  EXPECT_EQ(a->Pending(), 1u);
  EXPECT_EQ(b->Pending(), 1u);
  EXPECT_EQ(subs.SubscriberCount("enqueue"), 2u);
}

TEST(SubscriptionMapTest, UnsubscribeStopsDelivery) {
  SubscriptionMap subs;
  auto l = subs.Subscribe("op");
  subs.Unsubscribe("op", l);
  subs.Publish({"op", "", "", 0});
  EXPECT_EQ(l->Pending(), 0u);
  EXPECT_EQ(subs.SubscriberCount("op"), 0u);
}

TEST(DsRegistryTest, GetOrCreateIsStable) {
  DsRegistry reg;
  auto a = reg.GetOrCreate("job", "task");
  auto b = reg.GetOrCreate("job", "task");
  EXPECT_EQ(a.get(), b.get());
  EXPECT_NE(a.get(), reg.GetOrCreate("job", "other").get());
  EXPECT_EQ(reg.size(), 2u);
}

TEST(DsRegistryTest, FindAndRemove) {
  DsRegistry reg;
  EXPECT_EQ(reg.Find("j", "t"), nullptr);
  auto state = reg.GetOrCreate("j", "t");
  EXPECT_EQ(reg.Find("j", "t").get(), state.get());
  reg.Remove("j", "t");
  EXPECT_EQ(reg.Find("j", "t"), nullptr);
  // Existing shared_ptr holders keep the state alive.
  state->queue_items.store(7);
  EXPECT_EQ(state->queue_items.load(), 7);
}

}  // namespace
}  // namespace jiffy
