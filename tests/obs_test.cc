// Observability subsystem tests: metrics registry semantics, concurrent
// recording, snapshot consistency, trace-span nesting, disabled-mode cost
// paths, and the end-to-end cluster wiring (acceptance criteria: a KV /
// File / Queue workload leaves non-zero allocation, lease, and transport
// metrics in Cluster::MetricsSnapshot()).

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string_view>
#include <thread>
#include <vector>

#include "src/client/jiffy_client.h"
#include "src/common/clock.h"
#include "src/obs/metrics.h"
#include "src/obs/slo.h"
#include "src/obs/trace.h"

namespace jiffy {
namespace {

// Restores the master flag and tracer state on scope exit so a failing test
// cannot poison the rest of the suite.
class ObsStateGuard {
 public:
  ObsStateGuard()
      : enabled_(obs::Enabled()),
        trace_enabled_(obs::Tracer::Global()->enabled()) {}
  ~ObsStateGuard() {
    obs::SetEnabled(enabled_);
    obs::Tracer::Global()->SetEnabled(trace_enabled_);
    obs::Tracer::Global()->Clear();
  }

 private:
  bool enabled_;
  bool trace_enabled_;
};

// --- Counter / gauge / histogram ---------------------------------------------

TEST(ObsMetrics, CounterConcurrentIncrements) {
  ObsStateGuard guard;
  obs::SetEnabled(true);
  obs::Counter counter;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kPerThread; ++i) {
        counter.Increment();
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(counter.Value(), static_cast<uint64_t>(kThreads) * kPerThread);
  counter.Reset();
  EXPECT_EQ(counter.Value(), 0u);
}

TEST(ObsMetrics, RegistryReturnsStableSharedPointers) {
  obs::MetricsRegistry registry;
  obs::Counter* a = registry.GetCounter("x.ops_total");
  obs::Counter* b = registry.GetCounter("x.ops_total");
  EXPECT_EQ(a, b);  // Same name → same instance.
  EXPECT_NE(a, registry.GetCounter("y.ops_total"));
  EXPECT_EQ(registry.GetGauge("x.depth"), registry.GetGauge("x.depth"));
  EXPECT_EQ(registry.GetHistogram("x.ns"), registry.GetHistogram("x.ns"));
}

TEST(ObsMetrics, GaugeSetAndAdd) {
  ObsStateGuard guard;
  obs::SetEnabled(true);
  obs::MetricsRegistry registry;
  obs::Gauge* g = registry.GetGauge("pool.free");
  g->Set(128);
  EXPECT_EQ(g->Value(), 128);
  g->Add(-28);
  EXPECT_EQ(g->Value(), 100);
  auto snap = registry.Snapshot();
  EXPECT_EQ(snap.GaugeValue("pool.free"), 100);
}

TEST(ObsMetrics, HistogramThroughRegistry) {
  ObsStateGuard guard;
  obs::SetEnabled(true);
  obs::MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("op.latency_ns");
  for (int i = 1; i <= 100; ++i) {
    obs::Observe(h, i * 1000);
  }
  auto snap = registry.Snapshot();
  const auto& summary = snap.histograms.at("op.latency_ns");
  EXPECT_EQ(summary.count, 100u);
  EXPECT_EQ(summary.min, 1000);
  EXPECT_GE(summary.p99, summary.p50);
  EXPECT_GT(summary.mean, 0.0);
}

TEST(ObsMetrics, SnapshotIsConsistentUnderConcurrentRecording) {
  ObsStateGuard guard;
  obs::SetEnabled(true);
  obs::MetricsRegistry registry;
  obs::Counter* c = registry.GetCounter("c");
  Histogram* h = registry.GetHistogram("h");
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    // do-while guarantees at least one increment even if the main thread
    // finishes its snapshot loop before this thread is first scheduled.
    do {
      c->Increment();
      h->Record(42);
    } while (!stop.load());
  });
  // Snapshots taken mid-traffic must never observe impossible values.
  for (int i = 0; i < 50; ++i) {
    auto snap = registry.Snapshot();
    EXPECT_LE(snap.CounterValue("c"), c->Value());
    const auto& hs = snap.histograms.at("h");
    if (hs.count > 0) {
      EXPECT_EQ(hs.min, 42);
      EXPECT_EQ(hs.max, 42);
    }
  }
  stop.store(true);
  writer.join();
  EXPECT_GT(registry.Snapshot().CounterValue("c"), 0u);
}

TEST(ObsMetrics, DisabledModeRecordsNothing) {
  ObsStateGuard guard;
  obs::MetricsRegistry registry;
  obs::Counter* c = registry.GetCounter("c");
  obs::Gauge* g = registry.GetGauge("g");
  Histogram* h = registry.GetHistogram("h");
  obs::SetEnabled(false);
  c->Increment(7);
  g->Set(9);
  obs::Observe(h, 1234);
  { obs::ScopedTimer timer(h); }
  EXPECT_EQ(c->Value(), 0u);
  EXPECT_EQ(g->Value(), 0);
  EXPECT_EQ(h->count(), 0u);
  obs::SetEnabled(true);
  c->Increment(7);
  EXPECT_EQ(c->Value(), 7u);
}

TEST(ObsMetrics, NullToleranceOfHelpers) {
  // Components that never got BindMetrics record through null pointers.
  obs::Inc(nullptr);
  obs::Inc(nullptr, 5);
  obs::Observe(nullptr, 123);
  { obs::ScopedTimer timer(nullptr); }
}

TEST(ObsMetrics, PrometheusTextExposition) {
  ObsStateGuard guard;
  obs::SetEnabled(true);
  obs::MetricsRegistry registry;
  registry.GetCounter("allocator.allocations_total")->Increment(3);
  registry.GetGauge("allocator.free_blocks")->Set(61);
  registry.GetHistogram("allocator.alloc_ns")->Record(500);
  const std::string text = registry.PrometheusText();
  EXPECT_NE(text.find("# TYPE jiffy_allocator_allocations_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("jiffy_allocator_allocations_total 3"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE jiffy_allocator_free_blocks gauge"),
            std::string::npos);
  EXPECT_NE(text.find("jiffy_allocator_alloc_ns_count 1"), std::string::npos);
  EXPECT_NE(text.find("quantile=\"0.99\""), std::string::npos);
}

// --- Labeled (per-tenant) metrics --------------------------------------------

TEST(ObsLabels, TenantOfSplitsOnColonOrDot) {
  EXPECT_EQ(obs::TenantOf("acme:etl-7"), "acme");
  EXPECT_EQ(obs::TenantOf("acme.etl-7"), "acme");  // Path-segment-safe form.
  EXPECT_EQ(obs::TenantOf("acme:etl.7"), "acme");  // First separator wins.
  EXPECT_EQ(obs::TenantOf("solo"), "solo");        // No separator: own tenant.
}

TEST(ObsLabels, LabeledMetricsAreDistinctPerLabelSet) {
  ObsStateGuard guard;
  obs::SetEnabled(true);
  obs::MetricsRegistry registry;
  const obs::TenantLabels acme{"acme", "acme:j1", "kv"};
  const obs::TenantLabels beta{"beta", "beta:j1", "kv"};
  obs::Counter* plain = registry.GetCounter("client.ops_total");
  obs::Counter* a = registry.GetCounter("client.ops_total", acme);
  obs::Counter* b = registry.GetCounter("client.ops_total", beta);
  EXPECT_NE(plain, a);
  EXPECT_NE(a, b);
  EXPECT_EQ(a, registry.GetCounter("client.ops_total", acme));  // Interned.
  EXPECT_EQ(registry.GetHistogram("client.latency_ns", acme),
            registry.GetHistogram("client.latency_ns", acme));
  a->Increment(3);
  b->Increment(5);
  auto snap = registry.Snapshot();
  EXPECT_EQ(snap.CounterValue(
                "client.ops_total{tenant=\"acme\",job=\"acme:j1\",kind=\"kv\"}"),
            3u);
  EXPECT_EQ(snap.SumCounters("client.ops_total"), 8u);
}

TEST(ObsLabels, CardinalityCapRedirectsToOverflowBucket) {
  ObsStateGuard guard;
  obs::SetEnabled(true);
  obs::MetricsRegistry registry;
  // Exhaust the per-registry label-set budget with distinct tenants.
  for (size_t i = 0; i < obs::MetricsRegistry::kMaxLabelSets; ++i) {
    const std::string t = "t" + std::to_string(i);
    registry.GetCounter("ops", {t, t + ":j", "kv"});
  }
  // Established sets keep their identity past the cap...
  obs::Counter* first = registry.GetCounter("ops", {"t0", "t0:j", "kv"});
  ASSERT_NE(first, nullptr);
  first->Increment();
  // ...while new sets collapse into the shared per-kind overflow bucket.
  obs::Counter* over_a = registry.GetCounter("ops", {"new1", "new1:j", "kv"});
  obs::Counter* over_b = registry.GetCounter("ops", {"new2", "new2:j", "kv"});
  EXPECT_EQ(over_a, over_b);
  EXPECT_NE(over_a, first);
  over_a->Increment(2);
  auto snap = registry.Snapshot();
  EXPECT_EQ(snap.CounterValue("ops{tenant=\"t0\",job=\"t0:j\",kind=\"kv\"}"),
            1u);
  EXPECT_EQ(snap.SumCounters("tenant=\"_overflow\""), 2u);
}

TEST(ObsLabels, PrometheusTextPreservesLabelBlocks) {
  ObsStateGuard guard;
  obs::SetEnabled(true);
  obs::MetricsRegistry registry;
  registry.GetCounter("client.ops_total", {"acme", "acme:j1", "kv"})
      ->Increment(7);
  registry.GetHistogram("client.latency_ns", {"acme", "acme:j1", "kv"})
      ->Record(1000);
  const std::string text = registry.PrometheusText();
  // The label block survives sanitization as real Prometheus labels.
  EXPECT_NE(text.find("jiffy_client_ops_total{tenant=\"acme\",job=\"acme:j1\","
                      "kind=\"kv\"} 7"),
            std::string::npos);
  // Histogram quantile samples merge the label block with the quantile label.
  EXPECT_NE(text.find("tenant=\"acme\""), std::string::npos);
  EXPECT_NE(text.find("quantile=\"0.99\""), std::string::npos);
  const size_t qpos = text.find("jiffy_client_latency_ns{");
  ASSERT_NE(qpos, std::string::npos);
  const std::string line = text.substr(qpos, text.find('\n', qpos) - qpos);
  EXPECT_NE(line.find("tenant=\"acme\""), std::string::npos);
}

// --- Histogram::Merge locking contract ---------------------------------------

TEST(ObsMetrics, HistogramMergeIsDeadlockFreeAndSelfSafe) {
  ObsStateGuard guard;
  obs::SetEnabled(true);
  // The documented contract (src/common/histogram.h): Merge snapshots the
  // source under its lock, then applies under the destination's lock — the
  // two are never held together, so concurrent cross-merges cannot deadlock.
  Histogram a, b;
  for (int i = 0; i < 100; ++i) {
    a.Record(i);
    b.Record(1000 + i);
  }
  std::thread t1([&] {
    for (int i = 0; i < 50; ++i) {
      a.Merge(b);
    }
  });
  std::thread t2([&] {
    for (int i = 0; i < 50; ++i) {
      b.Merge(a);
    }
  });
  t1.join();
  t2.join();  // Completion IS the deadlock-freedom assertion.
  EXPECT_GT(a.count(), 100u);
  EXPECT_GT(b.count(), 100u);

  // Self-merge takes the non-recursive mutex twice in sequence, not nested.
  Histogram h;
  h.Record(7);
  h.Record(9);
  h.Merge(h);
  EXPECT_EQ(h.count(), 4u);
}

// --- SLO monitor -------------------------------------------------------------

// Saves/restores the JIFFY_SLO runtime flag around a test.
class SloFlagGuard {
 public:
  SloFlagGuard() : prev_(obs::g_slo_enabled.load()) {
    obs::SetSloEnabled(true);
  }
  ~SloFlagGuard() { obs::SetSloEnabled(prev_); }

 private:
  bool prev_;
};

TEST(ObsSlo, WindowedQuantilesAndAvailability) {
  ObsStateGuard obs_guard;
  obs::SetEnabled(true);
  SloFlagGuard slo_guard;
  obs::SloMonitor::Options opts;
  opts.target.p99_latency_ns = 10 * kMillisecond;
  opts.target.availability = 0.9;
  opts.window_capacity = 64;
  obs::SloMonitor slo(opts);
  obs::SloMonitor::TenantState* h = slo.Handle("acme");
  ASSERT_EQ(h, slo.Handle("acme"));  // Stable cached handle.
  for (int i = 1; i <= 100; ++i) {
    h->Record(i * 100 * kMicrosecond, /*ok=*/i % 10 != 0);
  }
  const obs::TenantHealth health = slo.Health("acme");
  EXPECT_EQ(health.total_ops, 100u);
  EXPECT_EQ(health.window_samples, 64u);  // Ring capacity bounds the window.
  EXPECT_EQ(health.total_errors, 10u);
  EXPECT_GE(health.p99_ns, health.p50_ns);
  EXPECT_LT(health.availability, 1.0);
  EXPECT_FALSE(health.p99_violated);  // p99 = 10ms target, max sample 10ms.
  // HealthAll / reports cover every registered tenant.
  slo.Handle("beta")->Record(1 * kMillisecond, true);
  EXPECT_EQ(slo.HealthAll().size(), 2u);
  EXPECT_NE(slo.ReportText().find("acme"), std::string::npos);
  EXPECT_NE(slo.ReportJson().find("\"tenant\":\"beta\""), std::string::npos);
}

TEST(ObsSlo, ErrorBudgetExhaustionFiresRateLimitedAlerts) {
  ObsStateGuard obs_guard;
  obs::SetEnabled(true);
  SloFlagGuard slo_guard;
  obs::SloMonitor::Options opts;
  opts.target.availability = 0.99;  // Budget: 1% of the window.
  opts.window_capacity = 128;
  opts.check_every = 1;
  opts.alert_cooldown = 3600 * kSecond;  // One alert, then silence.
  obs::SloMonitor slo(opts);
  std::vector<std::string> alerted;
  slo.SetAlertCallback([&](const obs::TenantHealth& health) {
    alerted.push_back(health.tenant);
    EXPECT_TRUE(health.budget_exhausted || health.p99_violated);
  });
  for (int i = 0; i < 50; ++i) {
    slo.Record("acme", 1 * kMillisecond, /*ok=*/false);
  }
  const obs::TenantHealth health = slo.Health("acme");
  EXPECT_TRUE(health.budget_exhausted);
  EXPECT_EQ(health.error_budget_remaining, 0.0);
  EXPECT_EQ(slo.alerts_fired(), 1u);  // Cooldown collapsed 50 violations.
  ASSERT_EQ(alerted.size(), 1u);
  EXPECT_EQ(alerted[0], "acme");
  // A healthy tenant never alerts.
  for (int i = 0; i < 50; ++i) {
    slo.Record("beta", 1 * kMillisecond, /*ok=*/true);
  }
  EXPECT_EQ(slo.alerts_fired(), 1u);
  EXPECT_FALSE(slo.Health("beta").budget_exhausted);
}

TEST(ObsSlo, SetOptionsDropsSamplesButKeepsHandles) {
  ObsStateGuard obs_guard;
  obs::SetEnabled(true);
  SloFlagGuard slo_guard;
  obs::SloMonitor slo;
  obs::SloMonitor::TenantState* h = slo.Handle("acme");
  for (int i = 0; i < 32; ++i) {
    h->Record(1 * kMillisecond, false);
  }
  EXPECT_EQ(slo.Health("acme").total_ops, 32u);
  obs::SloMonitor::Options opts;
  opts.window_capacity = 16;
  opts.target.p99_latency_ns = 1 * kSecond;
  slo.SetOptions(opts);
  EXPECT_EQ(slo.options().window_capacity, 16u);
  // All samples dropped; the cached handle records into the new window.
  EXPECT_EQ(slo.Health("acme").total_ops, 0u);
  for (int i = 0; i < 32; ++i) {
    h->Record(1 * kMillisecond, true);
  }
  const obs::TenantHealth health = slo.Health("acme");
  EXPECT_EQ(health.total_ops, 32u);
  EXPECT_EQ(health.window_samples, 16u);
}

TEST(ObsSlo, DisabledRecordsNothing) {
  ObsStateGuard obs_guard;
  obs::SetEnabled(true);
  SloFlagGuard slo_guard;
  obs::SloMonitor slo;
  obs::SetSloEnabled(false);
  slo.Record("acme", 5 * kMillisecond, false);
  EXPECT_EQ(slo.Health("acme").total_ops, 0u);
  // The obs master flag gates recording too.
  obs::SetSloEnabled(true);
  obs::SetEnabled(false);
  slo.Record("acme", 5 * kMillisecond, false);
  EXPECT_EQ(slo.Health("acme").total_ops, 0u);
  obs::SetEnabled(true);
  slo.Record("acme", 5 * kMillisecond, true);
  EXPECT_EQ(slo.Health("acme").total_ops, 1u);
}

// --- Tracing ----------------------------------------------------------------

TEST(ObsTrace, SpanNestingIsContained) {
  ObsStateGuard guard;
  obs::SetEnabled(true);
  obs::Tracer* tracer = obs::Tracer::Global();
  tracer->Clear();
  tracer->SetEnabled(true);
  {
    JIFFY_TRACE_SPAN("outer", "test");
    {
      JIFFY_TRACE_SPAN("inner", "test");
      RealClock::Instance()->SleepFor(1 * kMillisecond);
    }
    RealClock::Instance()->SleepFor(1 * kMillisecond);
  }
  const auto events = tracer->Collect();
  const obs::TraceEvent* outer = nullptr;
  const obs::TraceEvent* inner = nullptr;
  for (const auto& e : events) {
    if (std::string_view(e.name) == "outer") {
      outer = &e;
    } else if (std::string_view(e.name) == "inner") {
      inner = &e;
    }
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  // The inner span starts after and ends before the outer one.
  EXPECT_GE(inner->start_ns, outer->start_ns);
  EXPECT_LE(inner->start_ns + inner->duration_ns,
            outer->start_ns + outer->duration_ns);
  EXPECT_EQ(inner->tid, outer->tid);  // Same thread.
}

TEST(ObsTrace, DisabledTracerRecordsNothing) {
  ObsStateGuard guard;
  obs::SetEnabled(true);
  obs::Tracer* tracer = obs::Tracer::Global();
  tracer->Clear();
  tracer->SetEnabled(false);
  { JIFFY_TRACE_SPAN("ghost", "test"); }
  EXPECT_EQ(tracer->EventCount(), 0u);
  // The master flag also gates tracing even when the tracer itself is on.
  tracer->SetEnabled(true);
  obs::SetEnabled(false);
  { JIFFY_TRACE_SPAN("ghost2", "test"); }
  EXPECT_EQ(tracer->EventCount(), 0u);
}

TEST(ObsTrace, ChromeJsonIsStructurallyValid) {
  ObsStateGuard guard;
  obs::SetEnabled(true);
  obs::Tracer* tracer = obs::Tracer::Global();
  tracer->Clear();
  tracer->SetEnabled(true);
  { JIFFY_TRACE_SPAN("alpha", "cat1"); }
  { JIFFY_TRACE_SPAN("beta", "cat2"); }
  const std::string json = tracer->ToChromeJson();
  EXPECT_EQ(json.front(), '{');
  // Output ends with "}\n" (trailing newline for file-friendly output).
  const size_t last = json.find_last_not_of(" \t\n");
  ASSERT_NE(last, std::string::npos);
  EXPECT_EQ(json[last], '}');
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"alpha\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"cat2\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":"), std::string::npos);
  // Balanced braces/brackets (cheap structural check without a JSON parser).
  int braces = 0, brackets = 0;
  bool in_string = false;
  for (size_t i = 0; i < json.size(); ++i) {
    const char ch = json[i];
    if (ch == '"' && (i == 0 || json[i - 1] != '\\')) {
      in_string = !in_string;
    } else if (!in_string) {
      braces += (ch == '{') - (ch == '}');
      brackets += (ch == '[') - (ch == ']');
    }
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(ObsTrace, RingOverwritesOldestEvents) {
  ObsStateGuard guard;
  obs::SetEnabled(true);
  obs::Tracer* tracer = obs::Tracer::Global();
  tracer->Clear();
  tracer->SetEnabled(true);
  const size_t n = obs::Tracer::kRingCapacity + 100;
  for (size_t i = 0; i < n; ++i) {
    tracer->RecordComplete("evt", "test", static_cast<TimeNs>(i), 1);
  }
  // This thread's ring is full but not over-full.
  EXPECT_LE(tracer->EventCount(), obs::Tracer::kRingCapacity + 1);
  const auto events = tracer->Collect();
  ASSERT_FALSE(events.empty());
  // Oldest surviving event is one of the most recent kRingCapacity.
  EXPECT_GE(events.front().start_ns, static_cast<TimeNs>(n) -
                                         static_cast<TimeNs>(
                                             obs::Tracer::kRingCapacity) -
                                         1);
}

// --- End-to-end cluster wiring ----------------------------------------------

TEST(ObsCluster, WorkloadPopulatesMetricsSnapshot) {
  ObsStateGuard guard;
  obs::SetEnabled(true);
  SimClock clock;
  JiffyCluster::Options opts;
  opts.config.num_memory_servers = 4;
  opts.config.blocks_per_server = 64;
  opts.config.block_size_bytes = 4096;
  opts.config.lease_duration = 60 * kSecond;
  opts.clock = &clock;
  JiffyCluster cluster(opts);
  JiffyClient client(&cluster);
  ASSERT_TRUE(client.RegisterJob("job").ok());
  ASSERT_TRUE(client.CreateAddrPrefix("/job/kv", {}).ok());
  ASSERT_TRUE(client.CreateAddrPrefix("/job/file", {}).ok());
  ASSERT_TRUE(client.CreateAddrPrefix("/job/queue", {}).ok());

  auto kv = client.OpenKv("/job/kv");
  ASSERT_TRUE(kv.ok());
  for (int i = 0; i < 32; ++i) {
    ASSERT_TRUE((*kv)->Put("key" + std::to_string(i), "value").ok());
  }
  EXPECT_EQ(*(*kv)->Get("key7"), "value");

  auto file = client.OpenFile("/job/file");
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append("hello observability").ok());
  EXPECT_EQ(*(*file)->Read(0, 5), "hello");

  auto queue = client.OpenQueue("/job/queue");
  ASSERT_TRUE(queue.ok());
  ASSERT_TRUE((*queue)->Enqueue("item").ok());
  EXPECT_EQ(*(*queue)->Dequeue(), "item");

  ASSERT_TRUE(client.RenewLease("/job/kv").ok());
  cluster.controller_shard(0)->RunExpiryScan();

  auto snap = cluster.MetricsSnapshot();
  // Allocation: one block per data structure at minimum.
  EXPECT_GE(snap.CounterValue("allocator.allocations_total"), 3u);
  EXPECT_GT(snap.GaugeValue("allocator.free_blocks"), 0);
  // Lease + expiry activity on the (single) controller shard.
  EXPECT_GE(snap.SumCounters("lease_renewals_total"), 1u);
  EXPECT_GE(snap.SumCounters("expiry_scans_total"), 1u);
  EXPECT_GT(snap.SumCounters(".ops_total"), 0u);
  // Transports charged data- and control-plane round trips.
  EXPECT_GT(snap.CounterValue("transport.data.ops_total"), 0u);
  EXPECT_GT(snap.CounterValue("transport.data.bytes_total"), 0u);
  EXPECT_GT(snap.CounterValue("transport.control.ops_total"), 0u);
  EXPECT_GT(snap.histograms.at("transport.data.rtt_ns").count, 0u);
  // Data-plane block ops counted by the hosting servers.
  EXPECT_GT(snap.SumCounters("block_ops_total"), 0u);
  EXPECT_GE(snap.CounterValue("cluster.init_blocks_total"), 3u);

  // The text expositions render the same data.
  EXPECT_NE(snap.ToString().find("allocator.allocations_total"),
            std::string::npos);
  EXPECT_NE(cluster.MetricsPrometheusText().find(
                "jiffy_allocator_allocations_total"),
            std::string::npos);
}

TEST(ObsCluster, ClustersDoNotShareMetrics) {
  ObsStateGuard guard;
  obs::SetEnabled(true);
  SimClock clock;
  JiffyCluster::Options opts;
  opts.config.num_memory_servers = 1;
  opts.config.blocks_per_server = 8;
  opts.config.block_size_bytes = 4096;
  opts.clock = &clock;
  JiffyCluster a(opts);
  JiffyCluster b(opts);
  JiffyClient client(&a);
  ASSERT_TRUE(client.RegisterJob("job").ok());
  ASSERT_TRUE(client.CreateAddrPrefix("/job/t", {}).ok());
  ASSERT_TRUE(client.OpenKv("/job/t").ok());
  EXPECT_GT(a.MetricsSnapshot().CounterValue("allocator.allocations_total"),
            0u);
  EXPECT_EQ(b.MetricsSnapshot().CounterValue("allocator.allocations_total"),
            0u);
}

TEST(ObsCluster, TraceCapturesClientAndControlSpans) {
  ObsStateGuard guard;
  obs::SetEnabled(true);
  obs::Tracer* tracer = obs::Tracer::Global();
  tracer->Clear();
  tracer->SetEnabled(true);
  SimClock clock;
  JiffyCluster::Options opts;
  opts.config.num_memory_servers = 1;
  opts.config.blocks_per_server = 8;
  opts.config.block_size_bytes = 4096;
  opts.clock = &clock;
  JiffyCluster cluster(opts);
  JiffyClient client(&cluster);
  ASSERT_TRUE(client.RegisterJob("job").ok());
  ASSERT_TRUE(client.CreateAddrPrefix("/job/t", {}).ok());
  auto kv = client.OpenKv("/job/t");
  ASSERT_TRUE(kv.ok());
  ASSERT_TRUE((*kv)->Put("k", "v").ok());
  std::set<std::string> names;
  for (const auto& e : tracer->Collect()) {
    names.insert(e.name);
  }
  EXPECT_TRUE(names.count("kv.put"));
  EXPECT_TRUE(names.count("ctl.create_prefix"));
  EXPECT_TRUE(names.count("ctl.init_ds"));
  EXPECT_TRUE(names.count("alloc.allocate_n"));
  EXPECT_TRUE(names.count("data.init_block"));
  EXPECT_TRUE(names.count("net.rtt"));
}

}  // namespace
}  // namespace jiffy
