// Observability subsystem tests: metrics registry semantics, concurrent
// recording, snapshot consistency, trace-span nesting, disabled-mode cost
// paths, and the end-to-end cluster wiring (acceptance criteria: a KV /
// File / Queue workload leaves non-zero allocation, lease, and transport
// metrics in Cluster::MetricsSnapshot()).

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string_view>
#include <thread>
#include <vector>

#include "src/client/jiffy_client.h"
#include "src/common/clock.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace jiffy {
namespace {

// Restores the master flag and tracer state on scope exit so a failing test
// cannot poison the rest of the suite.
class ObsStateGuard {
 public:
  ObsStateGuard()
      : enabled_(obs::Enabled()),
        trace_enabled_(obs::Tracer::Global()->enabled()) {}
  ~ObsStateGuard() {
    obs::SetEnabled(enabled_);
    obs::Tracer::Global()->SetEnabled(trace_enabled_);
    obs::Tracer::Global()->Clear();
  }

 private:
  bool enabled_;
  bool trace_enabled_;
};

// --- Counter / gauge / histogram ---------------------------------------------

TEST(ObsMetrics, CounterConcurrentIncrements) {
  ObsStateGuard guard;
  obs::SetEnabled(true);
  obs::Counter counter;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kPerThread; ++i) {
        counter.Increment();
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(counter.Value(), static_cast<uint64_t>(kThreads) * kPerThread);
  counter.Reset();
  EXPECT_EQ(counter.Value(), 0u);
}

TEST(ObsMetrics, RegistryReturnsStableSharedPointers) {
  obs::MetricsRegistry registry;
  obs::Counter* a = registry.GetCounter("x.ops_total");
  obs::Counter* b = registry.GetCounter("x.ops_total");
  EXPECT_EQ(a, b);  // Same name → same instance.
  EXPECT_NE(a, registry.GetCounter("y.ops_total"));
  EXPECT_EQ(registry.GetGauge("x.depth"), registry.GetGauge("x.depth"));
  EXPECT_EQ(registry.GetHistogram("x.ns"), registry.GetHistogram("x.ns"));
}

TEST(ObsMetrics, GaugeSetAndAdd) {
  ObsStateGuard guard;
  obs::SetEnabled(true);
  obs::MetricsRegistry registry;
  obs::Gauge* g = registry.GetGauge("pool.free");
  g->Set(128);
  EXPECT_EQ(g->Value(), 128);
  g->Add(-28);
  EXPECT_EQ(g->Value(), 100);
  auto snap = registry.Snapshot();
  EXPECT_EQ(snap.GaugeValue("pool.free"), 100);
}

TEST(ObsMetrics, HistogramThroughRegistry) {
  ObsStateGuard guard;
  obs::SetEnabled(true);
  obs::MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("op.latency_ns");
  for (int i = 1; i <= 100; ++i) {
    obs::Observe(h, i * 1000);
  }
  auto snap = registry.Snapshot();
  const auto& summary = snap.histograms.at("op.latency_ns");
  EXPECT_EQ(summary.count, 100u);
  EXPECT_EQ(summary.min, 1000);
  EXPECT_GE(summary.p99, summary.p50);
  EXPECT_GT(summary.mean, 0.0);
}

TEST(ObsMetrics, SnapshotIsConsistentUnderConcurrentRecording) {
  ObsStateGuard guard;
  obs::SetEnabled(true);
  obs::MetricsRegistry registry;
  obs::Counter* c = registry.GetCounter("c");
  Histogram* h = registry.GetHistogram("h");
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    // do-while guarantees at least one increment even if the main thread
    // finishes its snapshot loop before this thread is first scheduled.
    do {
      c->Increment();
      h->Record(42);
    } while (!stop.load());
  });
  // Snapshots taken mid-traffic must never observe impossible values.
  for (int i = 0; i < 50; ++i) {
    auto snap = registry.Snapshot();
    EXPECT_LE(snap.CounterValue("c"), c->Value());
    const auto& hs = snap.histograms.at("h");
    if (hs.count > 0) {
      EXPECT_EQ(hs.min, 42);
      EXPECT_EQ(hs.max, 42);
    }
  }
  stop.store(true);
  writer.join();
  EXPECT_GT(registry.Snapshot().CounterValue("c"), 0u);
}

TEST(ObsMetrics, DisabledModeRecordsNothing) {
  ObsStateGuard guard;
  obs::MetricsRegistry registry;
  obs::Counter* c = registry.GetCounter("c");
  obs::Gauge* g = registry.GetGauge("g");
  Histogram* h = registry.GetHistogram("h");
  obs::SetEnabled(false);
  c->Increment(7);
  g->Set(9);
  obs::Observe(h, 1234);
  { obs::ScopedTimer timer(h); }
  EXPECT_EQ(c->Value(), 0u);
  EXPECT_EQ(g->Value(), 0);
  EXPECT_EQ(h->count(), 0u);
  obs::SetEnabled(true);
  c->Increment(7);
  EXPECT_EQ(c->Value(), 7u);
}

TEST(ObsMetrics, NullToleranceOfHelpers) {
  // Components that never got BindMetrics record through null pointers.
  obs::Inc(nullptr);
  obs::Inc(nullptr, 5);
  obs::Observe(nullptr, 123);
  { obs::ScopedTimer timer(nullptr); }
}

TEST(ObsMetrics, PrometheusTextExposition) {
  ObsStateGuard guard;
  obs::SetEnabled(true);
  obs::MetricsRegistry registry;
  registry.GetCounter("allocator.allocations_total")->Increment(3);
  registry.GetGauge("allocator.free_blocks")->Set(61);
  registry.GetHistogram("allocator.alloc_ns")->Record(500);
  const std::string text = registry.PrometheusText();
  EXPECT_NE(text.find("# TYPE jiffy_allocator_allocations_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("jiffy_allocator_allocations_total 3"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE jiffy_allocator_free_blocks gauge"),
            std::string::npos);
  EXPECT_NE(text.find("jiffy_allocator_alloc_ns_count 1"), std::string::npos);
  EXPECT_NE(text.find("quantile=\"0.99\""), std::string::npos);
}

// --- Tracing ----------------------------------------------------------------

TEST(ObsTrace, SpanNestingIsContained) {
  ObsStateGuard guard;
  obs::SetEnabled(true);
  obs::Tracer* tracer = obs::Tracer::Global();
  tracer->Clear();
  tracer->SetEnabled(true);
  {
    JIFFY_TRACE_SPAN("outer", "test");
    {
      JIFFY_TRACE_SPAN("inner", "test");
      RealClock::Instance()->SleepFor(1 * kMillisecond);
    }
    RealClock::Instance()->SleepFor(1 * kMillisecond);
  }
  const auto events = tracer->Collect();
  const obs::TraceEvent* outer = nullptr;
  const obs::TraceEvent* inner = nullptr;
  for (const auto& e : events) {
    if (std::string_view(e.name) == "outer") {
      outer = &e;
    } else if (std::string_view(e.name) == "inner") {
      inner = &e;
    }
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  // The inner span starts after and ends before the outer one.
  EXPECT_GE(inner->start_ns, outer->start_ns);
  EXPECT_LE(inner->start_ns + inner->duration_ns,
            outer->start_ns + outer->duration_ns);
  EXPECT_EQ(inner->tid, outer->tid);  // Same thread.
}

TEST(ObsTrace, DisabledTracerRecordsNothing) {
  ObsStateGuard guard;
  obs::SetEnabled(true);
  obs::Tracer* tracer = obs::Tracer::Global();
  tracer->Clear();
  tracer->SetEnabled(false);
  { JIFFY_TRACE_SPAN("ghost", "test"); }
  EXPECT_EQ(tracer->EventCount(), 0u);
  // The master flag also gates tracing even when the tracer itself is on.
  tracer->SetEnabled(true);
  obs::SetEnabled(false);
  { JIFFY_TRACE_SPAN("ghost2", "test"); }
  EXPECT_EQ(tracer->EventCount(), 0u);
}

TEST(ObsTrace, ChromeJsonIsStructurallyValid) {
  ObsStateGuard guard;
  obs::SetEnabled(true);
  obs::Tracer* tracer = obs::Tracer::Global();
  tracer->Clear();
  tracer->SetEnabled(true);
  { JIFFY_TRACE_SPAN("alpha", "cat1"); }
  { JIFFY_TRACE_SPAN("beta", "cat2"); }
  const std::string json = tracer->ToChromeJson();
  EXPECT_EQ(json.front(), '{');
  // Output ends with "}\n" (trailing newline for file-friendly output).
  const size_t last = json.find_last_not_of(" \t\n");
  ASSERT_NE(last, std::string::npos);
  EXPECT_EQ(json[last], '}');
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"alpha\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"cat2\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":"), std::string::npos);
  // Balanced braces/brackets (cheap structural check without a JSON parser).
  int braces = 0, brackets = 0;
  bool in_string = false;
  for (size_t i = 0; i < json.size(); ++i) {
    const char ch = json[i];
    if (ch == '"' && (i == 0 || json[i - 1] != '\\')) {
      in_string = !in_string;
    } else if (!in_string) {
      braces += (ch == '{') - (ch == '}');
      brackets += (ch == '[') - (ch == ']');
    }
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(ObsTrace, RingOverwritesOldestEvents) {
  ObsStateGuard guard;
  obs::SetEnabled(true);
  obs::Tracer* tracer = obs::Tracer::Global();
  tracer->Clear();
  tracer->SetEnabled(true);
  const size_t n = obs::Tracer::kRingCapacity + 100;
  for (size_t i = 0; i < n; ++i) {
    tracer->RecordComplete("evt", "test", static_cast<TimeNs>(i), 1);
  }
  // This thread's ring is full but not over-full.
  EXPECT_LE(tracer->EventCount(), obs::Tracer::kRingCapacity + 1);
  const auto events = tracer->Collect();
  ASSERT_FALSE(events.empty());
  // Oldest surviving event is one of the most recent kRingCapacity.
  EXPECT_GE(events.front().start_ns, static_cast<TimeNs>(n) -
                                         static_cast<TimeNs>(
                                             obs::Tracer::kRingCapacity) -
                                         1);
}

// --- End-to-end cluster wiring ----------------------------------------------

TEST(ObsCluster, WorkloadPopulatesMetricsSnapshot) {
  ObsStateGuard guard;
  obs::SetEnabled(true);
  SimClock clock;
  JiffyCluster::Options opts;
  opts.config.num_memory_servers = 4;
  opts.config.blocks_per_server = 64;
  opts.config.block_size_bytes = 4096;
  opts.config.lease_duration = 60 * kSecond;
  opts.clock = &clock;
  JiffyCluster cluster(opts);
  JiffyClient client(&cluster);
  ASSERT_TRUE(client.RegisterJob("job").ok());
  ASSERT_TRUE(client.CreateAddrPrefix("/job/kv", {}).ok());
  ASSERT_TRUE(client.CreateAddrPrefix("/job/file", {}).ok());
  ASSERT_TRUE(client.CreateAddrPrefix("/job/queue", {}).ok());

  auto kv = client.OpenKv("/job/kv");
  ASSERT_TRUE(kv.ok());
  for (int i = 0; i < 32; ++i) {
    ASSERT_TRUE((*kv)->Put("key" + std::to_string(i), "value").ok());
  }
  EXPECT_EQ(*(*kv)->Get("key7"), "value");

  auto file = client.OpenFile("/job/file");
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append("hello observability").ok());
  EXPECT_EQ(*(*file)->Read(0, 5), "hello");

  auto queue = client.OpenQueue("/job/queue");
  ASSERT_TRUE(queue.ok());
  ASSERT_TRUE((*queue)->Enqueue("item").ok());
  EXPECT_EQ(*(*queue)->Dequeue(), "item");

  ASSERT_TRUE(client.RenewLease("/job/kv").ok());
  cluster.controller_shard(0)->RunExpiryScan();

  auto snap = cluster.MetricsSnapshot();
  // Allocation: one block per data structure at minimum.
  EXPECT_GE(snap.CounterValue("allocator.allocations_total"), 3u);
  EXPECT_GT(snap.GaugeValue("allocator.free_blocks"), 0);
  // Lease + expiry activity on the (single) controller shard.
  EXPECT_GE(snap.SumCounters("lease_renewals_total"), 1u);
  EXPECT_GE(snap.SumCounters("expiry_scans_total"), 1u);
  EXPECT_GT(snap.SumCounters(".ops_total"), 0u);
  // Transports charged data- and control-plane round trips.
  EXPECT_GT(snap.CounterValue("transport.data.ops_total"), 0u);
  EXPECT_GT(snap.CounterValue("transport.data.bytes_total"), 0u);
  EXPECT_GT(snap.CounterValue("transport.control.ops_total"), 0u);
  EXPECT_GT(snap.histograms.at("transport.data.rtt_ns").count, 0u);
  // Data-plane block ops counted by the hosting servers.
  EXPECT_GT(snap.SumCounters("block_ops_total"), 0u);
  EXPECT_GE(snap.CounterValue("cluster.init_blocks_total"), 3u);

  // The text expositions render the same data.
  EXPECT_NE(snap.ToString().find("allocator.allocations_total"),
            std::string::npos);
  EXPECT_NE(cluster.MetricsPrometheusText().find(
                "jiffy_allocator_allocations_total"),
            std::string::npos);
}

TEST(ObsCluster, ClustersDoNotShareMetrics) {
  ObsStateGuard guard;
  obs::SetEnabled(true);
  SimClock clock;
  JiffyCluster::Options opts;
  opts.config.num_memory_servers = 1;
  opts.config.blocks_per_server = 8;
  opts.config.block_size_bytes = 4096;
  opts.clock = &clock;
  JiffyCluster a(opts);
  JiffyCluster b(opts);
  JiffyClient client(&a);
  ASSERT_TRUE(client.RegisterJob("job").ok());
  ASSERT_TRUE(client.CreateAddrPrefix("/job/t", {}).ok());
  ASSERT_TRUE(client.OpenKv("/job/t").ok());
  EXPECT_GT(a.MetricsSnapshot().CounterValue("allocator.allocations_total"),
            0u);
  EXPECT_EQ(b.MetricsSnapshot().CounterValue("allocator.allocations_total"),
            0u);
}

TEST(ObsCluster, TraceCapturesClientAndControlSpans) {
  ObsStateGuard guard;
  obs::SetEnabled(true);
  obs::Tracer* tracer = obs::Tracer::Global();
  tracer->Clear();
  tracer->SetEnabled(true);
  SimClock clock;
  JiffyCluster::Options opts;
  opts.config.num_memory_servers = 1;
  opts.config.blocks_per_server = 8;
  opts.config.block_size_bytes = 4096;
  opts.clock = &clock;
  JiffyCluster cluster(opts);
  JiffyClient client(&cluster);
  ASSERT_TRUE(client.RegisterJob("job").ok());
  ASSERT_TRUE(client.CreateAddrPrefix("/job/t", {}).ok());
  auto kv = client.OpenKv("/job/t");
  ASSERT_TRUE(kv.ok());
  ASSERT_TRUE((*kv)->Put("k", "v").ok());
  std::set<std::string> names;
  for (const auto& e : tracer->Collect()) {
    names.insert(e.name);
  }
  EXPECT_TRUE(names.count("kv.put"));
  EXPECT_TRUE(names.count("ctl.create_prefix"));
  EXPECT_TRUE(names.count("ctl.init_ds"));
  EXPECT_TRUE(names.count("alloc.allocate_n"));
  EXPECT_TRUE(names.count("data.init_block"));
  EXPECT_TRUE(names.count("net.rtt"));
}

}  // namespace
}  // namespace jiffy
