// Property-based tests: each data structure is driven with long random
// operation sequences (parameterized over seeds) and checked against a
// simple in-memory reference model, across block boundaries, splits,
// merges, and lease-policy variants.

#include <gtest/gtest.h>

#include <deque>
#include <map>

#include "src/client/jiffy_client.h"
#include "src/common/random.h"

namespace jiffy {
namespace {

std::unique_ptr<JiffyCluster> SmallCluster() {
  JiffyCluster::Options opts;
  opts.config.num_memory_servers = 4;
  opts.config.blocks_per_server = 256;
  opts.config.block_size_bytes = 2048;  // Tiny blocks: constant scaling.
  opts.config.lease_duration = 3600 * kSecond;
  return std::make_unique<JiffyCluster>(opts);
}

class DsPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DsPropertyTest, FileMatchesReferenceByteString) {
  auto cluster = SmallCluster();
  JiffyClient client(cluster.get());
  ASSERT_TRUE(client.RegisterJob("job").ok());
  ASSERT_TRUE(client.CreateAddrPrefix("/job/f", {}).ok());
  auto file = client.OpenFile("/job/f");
  ASSERT_TRUE(file.ok());

  Rng rng(GetParam());
  std::string reference;
  for (int op = 0; op < 300; ++op) {
    if (rng.NextBelow(3) != 0 || reference.empty()) {
      // Append a random-sized blob (may span multiple tiny blocks).
      const size_t len = 1 + rng.NextBelow(3000);
      std::string blob(len, static_cast<char>('a' + rng.NextBelow(26)));
      auto offset = (*file)->Append(blob);
      ASSERT_TRUE(offset.ok()) << op << ": " << offset.status();
      EXPECT_EQ(*offset, reference.size());
      reference += blob;
    } else {
      // Random read; compare with the reference.
      const uint64_t off = rng.NextBelow(reference.size());
      const size_t len = 1 + rng.NextBelow(4000);
      auto r = (*file)->Read(off, len);
      ASSERT_TRUE(r.ok()) << op << ": " << r.status();
      EXPECT_EQ(*r, reference.substr(off, len)) << "offset " << off;
    }
  }
  auto size = (*file)->Size();
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, reference.size());
  // Full-file read-back.
  auto all = (*file)->Read(0, reference.size());
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(*all, reference);
}

TEST_P(DsPropertyTest, QueueMatchesReferenceFifo) {
  auto cluster = SmallCluster();
  JiffyClient client(cluster.get());
  ASSERT_TRUE(client.RegisterJob("job").ok());
  ASSERT_TRUE(client.CreateAddrPrefix("/job/q", {}).ok());
  auto q = client.OpenQueue("/job/q");
  ASSERT_TRUE(q.ok());

  Rng rng(GetParam() ^ 0x51edce);
  std::deque<std::string> reference;
  uint64_t counter = 0;
  for (int op = 0; op < 1500; ++op) {
    if (rng.NextBelow(5) < 3) {
      std::string item = std::to_string(counter++) + "-" +
                         std::string(rng.NextBelow(200), 'q');
      reference.push_back(item);
      ASSERT_TRUE((*q)->Enqueue(std::move(item)).ok()) << op;
    } else {
      auto item = (*q)->Dequeue();
      if (reference.empty()) {
        EXPECT_EQ(item.status().code(), StatusCode::kNotFound) << op;
      } else {
        ASSERT_TRUE(item.ok()) << op << ": " << item.status();
        EXPECT_EQ(*item, reference.front()) << op;
        reference.pop_front();
      }
    }
  }
  // Drain the remainder in order.
  while (!reference.empty()) {
    auto item = (*q)->Dequeue();
    ASSERT_TRUE(item.ok());
    EXPECT_EQ(*item, reference.front());
    reference.pop_front();
  }
  EXPECT_EQ((*q)->Dequeue().status().code(), StatusCode::kNotFound);
}

TEST_P(DsPropertyTest, KvMatchesReferenceMapUnderChurn) {
  auto cluster = SmallCluster();
  JiffyClient client(cluster.get());
  ASSERT_TRUE(client.RegisterJob("job").ok());
  ASSERT_TRUE(client.CreateAddrPrefix("/job/kv", {}).ok());
  auto kv = client.OpenKv("/job/kv");
  ASSERT_TRUE(kv.ok());

  Rng rng2(GetParam() * 31 + 7);
  std::map<std::string, std::string> reference;
  for (int op = 0; op < 2000; ++op) {
    const std::string key = "key" + std::to_string(rng2.NextBelow(400));
    const uint64_t action = rng2.NextBelow(10);
    if (action < 5) {
      std::string value(1 + rng2.NextBelow(120),
                        static_cast<char>('A' + rng2.NextBelow(26)));
      ASSERT_TRUE((*kv)->Put(key, value).ok()) << op;
      reference[key] = value;
    } else if (action < 8) {
      auto v = (*kv)->Get(key);
      auto it = reference.find(key);
      if (it == reference.end()) {
        EXPECT_EQ(v.status().code(), StatusCode::kNotFound) << op << " " << key;
      } else {
        ASSERT_TRUE(v.ok()) << op << " " << key << ": " << v.status();
        EXPECT_EQ(*v, it->second) << op << " " << key;
      }
    } else {
      Status st = (*kv)->Delete(key);
      if (reference.erase(key) > 0) {
        EXPECT_TRUE(st.ok()) << op << " " << key << ": " << st;
      } else {
        EXPECT_EQ(st.code(), StatusCode::kNotFound) << op << " " << key;
      }
    }
  }
  // Drain in-flight background merges: CountPairs would otherwise see a
  // migration's destination copies alongside the authoritative source.
  if (cluster->repartitioner() != nullptr) {
    cluster->repartitioner()->WaitIdle();
  }
  EXPECT_EQ(*(*kv)->CountPairs(), reference.size());
  for (const auto& [k, v] : reference) {
    auto got = (*kv)->Get(k);
    ASSERT_TRUE(got.ok()) << k;
    EXPECT_EQ(*got, v);
  }
}

TEST_P(DsPropertyTest, KvFlushLoadRoundTripPreservesEverything) {
  JiffyCluster::Options opts;
  opts.config.num_memory_servers = 4;
  opts.config.blocks_per_server = 256;
  opts.config.block_size_bytes = 2048;
  opts.config.lease_duration = 1 * kSecond;
  SimClock clock;
  opts.clock = &clock;
  JiffyCluster cluster(opts);
  JiffyClient client(&cluster);
  ASSERT_TRUE(client.RegisterJob("job").ok());
  ASSERT_TRUE(client.CreateAddrPrefix("/job/kv", {}).ok());
  auto kv = client.OpenKv("/job/kv");
  ASSERT_TRUE(kv.ok());
  Rng rng(GetParam() + 99);
  std::map<std::string, std::string> reference;
  for (int i = 0; i < 500; ++i) {
    const std::string key = "key" + std::to_string(rng.NextBelow(300));
    std::string value(1 + rng.NextBelow(100), 'x');
    ASSERT_TRUE((*kv)->Put(key, value).ok());
    reference[key] = std::move(value);
  }
  // Quiesce background scaling first — expiry silently defers prefixes with
  // a migration in flight, and the flush must capture the final layout.
  if (cluster.repartitioner() != nullptr) {
    cluster.repartitioner()->WaitIdle();
  }
  // Let the lease lapse: data is flushed and reclaimed across many blocks.
  clock.AdvanceBy(2 * kSecond);
  ASSERT_EQ(cluster.controller_shard(0)->RunExpiryScan(), 1u);
  ASSERT_TRUE(client.LoadAddrPrefix("/job/kv", "jiffy/job/kv").ok());
  auto kv2 = client.OpenKv("/job/kv");
  ASSERT_TRUE(kv2.ok());
  EXPECT_EQ(*(*kv2)->CountPairs(), reference.size());
  for (const auto& [k, v] : reference) {
    auto got = (*kv2)->Get(k);
    ASSERT_TRUE(got.ok()) << k;
    EXPECT_EQ(*got, v) << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DsPropertyTest,
                         ::testing::Values(1, 7, 42, 1234, 987654));

// --- Lease policy unit coverage -------------------------------------------------

TEST(LeasePolicyTest, NoneRenewsOnlySelf) {
  JobHierarchy h("j", 0, kSecond, LeasePropagation::kNone);
  ASSERT_TRUE(h.CreateNode("a", {}, 0, 0).ok());
  ASSERT_TRUE(h.CreateNode("b", {"a"}, 0, 0).ok());
  ASSERT_TRUE(h.CreateNode("c", {"b"}, 0, 0).ok());
  auto renewed = h.RenewLease("b", 100);
  ASSERT_TRUE(renewed.ok());
  EXPECT_EQ((*renewed)->size(), 1u);
  EXPECT_EQ((*h.GetNode("a"))->lease_renewed_at, 0);
  EXPECT_EQ((*h.GetNode("b"))->lease_renewed_at, 100);
  EXPECT_EQ((*h.GetNode("c"))->lease_renewed_at, 0);
}

TEST(LeasePolicyTest, ParentsOnlySkipsDescendants) {
  JobHierarchy h("j", 0, kSecond, LeasePropagation::kParentsOnly);
  ASSERT_TRUE(h.CreateNode("a", {}, 0, 0).ok());
  ASSERT_TRUE(h.CreateNode("b", {"a"}, 0, 0).ok());
  ASSERT_TRUE(h.CreateNode("c", {"b"}, 0, 0).ok());
  auto renewed = h.RenewLease("b", 100);
  ASSERT_TRUE(renewed.ok());
  EXPECT_EQ((*renewed)->size(), 2u);
  EXPECT_EQ((*h.GetNode("a"))->lease_renewed_at, 100);
  EXPECT_EQ((*h.GetNode("c"))->lease_renewed_at, 0);
}

}  // namespace
}  // namespace jiffy
