// Background-repartitioner concurrency tests: clients keep reading and
// writing while chunked live migrations (splits and merges) are in flight.
// Chunk sizes are set tiny relative to the block size so every migration
// spans many chunk copies plus a dirty catch-up — the windows where data
// could be lost or duplicated if the protocol were wrong.
//
// Suite name contains "Concurrency" so the TSan CI job picks it up.

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/client/jiffy_client.h"
#include "src/common/random.h"

namespace jiffy {
namespace {

std::unique_ptr<JiffyCluster> MigrationCluster(size_t chunk_bytes) {
  JiffyCluster::Options opts;
  opts.config.num_memory_servers = 4;
  opts.config.blocks_per_server = 256;
  opts.config.block_size_bytes = 4096;
  opts.config.repartition_chunk_bytes = chunk_bytes;
  opts.config.lease_duration = 3600 * kSecond;
  return std::make_unique<JiffyCluster>(opts);
}

void DrainRepartitioner(JiffyCluster* cluster) {
  ASSERT_NE(cluster->repartitioner(), nullptr);
  cluster->repartitioner()->WaitIdle();
}

TEST(RepartitionConcurrencyTest, WritersDuringChunkedSplitLoseNoPairs) {
  auto cluster = MigrationCluster(/*chunk_bytes=*/512);
  JiffyClient client(cluster.get());
  ASSERT_TRUE(client.RegisterJob("job").ok());
  ASSERT_TRUE(client.CreateAddrPrefix("/job/kv", {}).ok());
  // Disjoint per-writer key spaces with unique values: a lost pair fails the
  // per-key read-back, a duplicated pair inflates CountPairs.
  constexpr int kWriters = 4;
  constexpr int kKeysPerWriter = 250;
  auto key_of = [](int w, int i) {
    return "w" + std::to_string(w) + "-" + std::to_string(i);
  };
  auto value_of = [](int w, int i) {
    return "v" + std::to_string(w) + ":" + std::to_string(i) +
           std::string(48, 'd');
  };
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      auto kv = client.OpenKv("/job/kv");
      ASSERT_TRUE(kv.ok());
      for (int i = 0; i < kKeysPerWriter; ++i) {
        ASSERT_TRUE((*kv)->Put(key_of(w, i), value_of(w, i)).ok())
            << key_of(w, i);
      }
    });
  }
  for (auto& t : writers) {
    t.join();
  }
  DrainRepartitioner(cluster.get());
  // The write volume (~60 KiB into 4 KiB blocks) guarantees real splits ran
  // concurrently with the writers above.
  EXPECT_GT(cluster->repartitioner()->splits(), 0u);
  auto kv = client.OpenKv("/job/kv");
  ASSERT_TRUE(kv.ok());
  ASSERT_TRUE((*kv)->RefreshMap().ok());
  EXPECT_GT((*kv)->CachedMap().entries.size(), 1u);
  EXPECT_EQ(*(*kv)->CountPairs(),
            static_cast<size_t>(kWriters) * kKeysPerWriter);
  for (int w = 0; w < kWriters; ++w) {
    for (int i = 0; i < kKeysPerWriter; ++i) {
      auto got = (*kv)->Get(key_of(w, i));
      ASSERT_TRUE(got.ok()) << key_of(w, i) << ": " << got.status();
      EXPECT_EQ(*got, value_of(w, i)) << key_of(w, i);
    }
  }
}

TEST(RepartitionConcurrencyTest, ReadersSeeStableValuesThroughMigrations) {
  auto cluster = MigrationCluster(/*chunk_bytes=*/512);
  JiffyClient client(cluster.get());
  ASSERT_TRUE(client.RegisterJob("job").ok());
  ASSERT_TRUE(client.CreateAddrPrefix("/job/kv", {}).ok());
  // Stable keys that never change; their slots ride along as churn forces
  // splits (grow) and merges (shrink) underneath the readers.
  constexpr int kStable = 24;
  {
    auto kv = client.OpenKv("/job/kv");
    ASSERT_TRUE(kv.ok());
    for (int i = 0; i < kStable; ++i) {
      ASSERT_TRUE(
          (*kv)->Put("stable" + std::to_string(i), "constant-value").ok());
    }
  }
  std::atomic<bool> stop{false};
  std::thread churner([&] {
    auto kv = client.OpenKv("/job/kv");
    ASSERT_TRUE(kv.ok());
    Rng rng(11);
    const TimeNs until = RealClock::Instance()->Now() + 100 * kMillisecond;
    for (int round = 0; RealClock::Instance()->Now() < until || round < 2;
         ++round) {
      for (int i = 0; i < 250; ++i) {
        ASSERT_TRUE((*kv)
                        ->Put("churn" + std::to_string(i),
                              std::string(80 + rng.NextBelow(40), 'c'))
                        .ok());
      }
      for (int i = 0; i < 250; ++i) {
        ASSERT_TRUE((*kv)->Delete("churn" + std::to_string(i)).ok());
      }
    }
  });
  std::vector<std::thread> readers;
  std::atomic<uint64_t> reads{0};
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&, r] {
      auto kv = client.OpenKv("/job/kv");
      ASSERT_TRUE(kv.ok());
      Rng rng(100 + r);
      while (!stop.load()) {
        auto v = (*kv)->Get("stable" + std::to_string(rng.NextBelow(kStable)));
        ASSERT_TRUE(v.ok()) << v.status();
        ASSERT_EQ(*v, "constant-value");
        reads.fetch_add(1);
      }
    });
  }
  churner.join();
  stop.store(true);
  for (auto& t : readers) {
    t.join();
  }
  DrainRepartitioner(cluster.get());
  EXPECT_GT(reads.load(), 10u);
  EXPECT_GT(cluster->repartitioner()->splits() +
                cluster->repartitioner()->merges(),
            0u);
}

TEST(RepartitionConcurrencyTest, MixedChurnConvergesThroughSplitsAndMerges) {
  auto cluster = MigrationCluster(/*chunk_bytes=*/256);
  JiffyClient client(cluster.get());
  ASSERT_TRUE(client.RegisterJob("job").ok());
  ASSERT_TRUE(client.CreateAddrPrefix("/job/kv", {}).ok());
  // Each thread fills then thins its own key space, so overload flags
  // (splits) and underload flags (merges) are both raised while every
  // thread's survivors must come through untouched.
  constexpr int kThreads = 4;
  constexpr int kKeys = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto kv = client.OpenKv("/job/kv");
      ASSERT_TRUE(kv.ok());
      for (int i = 0; i < kKeys; ++i) {
        const std::string key =
            "t" + std::to_string(t) + "-" + std::to_string(i);
        ASSERT_TRUE((*kv)->Put(key, std::string(90, 'a' + t)).ok()) << key;
      }
      // Delete everything but every 10th key: drains most blocks below the
      // low threshold while siblings still hold live data.
      for (int i = 0; i < kKeys; ++i) {
        if (i % 10 == 0) {
          continue;
        }
        const std::string key =
            "t" + std::to_string(t) + "-" + std::to_string(i);
        ASSERT_TRUE((*kv)->Delete(key).ok()) << key;
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  DrainRepartitioner(cluster.get());
  auto kv = client.OpenKv("/job/kv");
  ASSERT_TRUE(kv.ok());
  ASSERT_TRUE((*kv)->RefreshMap().ok());
  const size_t survivors_per_thread = (kKeys + 9) / 10;
  EXPECT_EQ(*(*kv)->CountPairs(), kThreads * survivors_per_thread);
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kKeys; i += 10) {
      const std::string key = "t" + std::to_string(t) + "-" + std::to_string(i);
      auto got = (*kv)->Get(key);
      ASSERT_TRUE(got.ok()) << key << ": " << got.status();
      EXPECT_EQ(*got, std::string(90, 'a' + t)) << key;
    }
  }
}

TEST(RepartitionConcurrencyTest, QueueBackgroundScalingKeepsExactlyOnce) {
  auto cluster = MigrationCluster(/*chunk_bytes=*/512);
  JiffyClient client(cluster.get());
  ASSERT_TRUE(client.RegisterJob("job").ok());
  ASSERT_TRUE(client.CreateAddrPrefix("/job/q", {}).ok());
  // Background tail growth + head reclaim run while producers and consumers
  // race; every item must be delivered exactly once.
  constexpr int kProducers = 3;
  constexpr int kConsumers = 3;
  constexpr int kItems = 300;
  std::vector<std::thread> threads;
  std::mutex seen_mu;
  std::multiset<std::string> seen;
  std::atomic<int> consumed{0};
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      auto q = client.OpenQueue("/job/q");
      ASSERT_TRUE(q.ok());
      for (int i = 0; i < kItems; ++i) {
        std::string item = "p" + std::to_string(p) + ":" + std::to_string(i) +
                           std::string(40, '.');
        ASSERT_TRUE((*q)->Enqueue(std::move(item)).ok());
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      auto q = client.OpenQueue("/job/q");
      ASSERT_TRUE(q.ok());
      while (consumed.load() < kProducers * kItems) {
        auto item = (*q)->DequeueWait(3 * kSecond);
        if (!item.ok()) {
          break;
        }
        {
          std::lock_guard<std::mutex> lock(seen_mu);
          seen.insert(item->substr(0, item->find('.')));
        }
        consumed.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  DrainRepartitioner(cluster.get());
  EXPECT_EQ(consumed.load(), kProducers * kItems);
  EXPECT_EQ(seen.size(), static_cast<size_t>(kProducers) * kItems);
  for (const auto& item : seen) {
    EXPECT_EQ(seen.count(item), 1u) << item;
  }
}

}  // namespace
}  // namespace jiffy
