// Tests for chain replication at block granularity, memory-server failure
// handling, access control, and synchronous persistence (§4.2.2, Fig 7).

#include <gtest/gtest.h>

#include "src/client/jiffy_client.h"
#include "src/ds/kv_content.h"

namespace jiffy {
namespace {

class ReplicationTest : public ::testing::Test {
 protected:
  ReplicationTest() {
    JiffyCluster::Options opts;
    opts.config.num_memory_servers = 4;
    opts.config.blocks_per_server = 32;
    opts.config.block_size_bytes = 16 << 10;
    opts.config.lease_duration = 3600 * kSecond;
    cluster_ = std::make_unique<JiffyCluster>(opts);
    client_ = std::make_unique<JiffyClient>(cluster_.get());
    EXPECT_TRUE(client_->RegisterJob("job").ok());
  }

  CreateOptions Replicated(uint32_t r) {
    CreateOptions opts;
    opts.replication_factor = r;
    return opts;
  }

  std::unique_ptr<JiffyCluster> cluster_;
  std::unique_ptr<JiffyClient> client_;
};

TEST_F(ReplicationTest, ReplicasAllocatedOnDistinctServers) {
  ASSERT_TRUE(client_->CreateAddrPrefix("/job/kv", {}, Replicated(3)).ok());
  auto kv = client_->OpenKv("/job/kv");
  ASSERT_TRUE(kv.ok());
  auto map = (*kv)->CachedMap();
  ASSERT_EQ(map.entries.size(), 1u);
  ASSERT_EQ(map.entries[0].replicas.size(), 2u);
  // Chain spread across servers (4 servers, 3 chain members).
  std::set<uint32_t> servers = {map.entries[0].block.server_id};
  for (const auto& r : map.entries[0].replicas) {
    servers.insert(r.server_id);
  }
  EXPECT_EQ(servers.size(), 3u);
  // 3 blocks held for 1 logical block.
  EXPECT_EQ(cluster_->allocator()->allocated_count(), 3u);
}

TEST_F(ReplicationTest, WritesReachAllReplicas) {
  ASSERT_TRUE(client_->CreateAddrPrefix("/job/kv", {}, Replicated(3)).ok());
  auto kv = client_->OpenKv("/job/kv");
  ASSERT_TRUE(kv.ok());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE((*kv)->Put("k" + std::to_string(i), "v" + std::to_string(i)).ok());
  }
  auto map = (*kv)->CachedMap();
  for (const BlockId& rid : map.entries[0].replicas) {
    Block* rb = cluster_->ResolveBlock(rid);
    ASSERT_NE(rb, nullptr);
    Block::OpLock lock(*rb);
    auto* shard = dynamic_cast<KvShard*>(rb->content());
    ASSERT_NE(shard, nullptr);
    EXPECT_EQ(shard->pair_count(), 20u);
    EXPECT_EQ(*shard->Get("k7"), "v7");
  }
}

TEST_F(ReplicationTest, KvSurvivesPrimaryServerFailure) {
  ASSERT_TRUE(client_->CreateAddrPrefix("/job/kv", {}, Replicated(2)).ok());
  auto kv = client_->OpenKv("/job/kv");
  ASSERT_TRUE(kv.ok());
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE((*kv)->Put("k" + std::to_string(i), "payload").ok());
  }
  const BlockId primary = (*kv)->CachedMap().entries[0].block;
  cluster_->FailServer(primary.server_id);
  // Reads and writes fail over to the surviving replica transparently.
  for (int i = 0; i < 30; ++i) {
    auto v = (*kv)->Get("k" + std::to_string(i));
    ASSERT_TRUE(v.ok()) << i << ": " << v.status();
    EXPECT_EQ(*v, "payload");
  }
  ASSERT_TRUE((*kv)->Put("post-failure", "still-writable").ok());
  EXPECT_EQ(*(*kv)->Get("post-failure"), "still-writable");
  // The promoted chain no longer references the dead server.
  auto map = (*kv)->CachedMap();
  EXPECT_NE(map.entries[0].block.server_id, primary.server_id);
}

TEST_F(ReplicationTest, UnreplicatedDataIsLostOnFailure) {
  ASSERT_TRUE(client_->CreateAddrPrefix("/job/kv", {}).ok());  // r = 1.
  auto kv = client_->OpenKv("/job/kv");
  ASSERT_TRUE(kv.ok());
  ASSERT_TRUE((*kv)->Put("k", "v").ok());
  cluster_->FailServer((*kv)->CachedMap().entries[0].block.server_id);
  auto v = (*kv)->Get("k");
  EXPECT_EQ(v.status().code(), StatusCode::kUnavailable);
}

TEST_F(ReplicationTest, ReReplicationRestoresFactor) {
  ASSERT_TRUE(client_->CreateAddrPrefix("/job/kv", {}, Replicated(2)).ok());
  auto kv = client_->OpenKv("/job/kv");
  ASSERT_TRUE(kv.ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE((*kv)->Put("k" + std::to_string(i), "v").ok());
  }
  const BlockId primary = (*kv)->CachedMap().entries[0].block;
  cluster_->FailServer(primary.server_id);
  ASSERT_TRUE((*kv)->Get("k0").ok());  // Serves off the repaired chain.
  // FailServer repairs eagerly: the surviving replica was promoted and a
  // fresh replica already restored the chain to factor 2, so an explicit
  // ReReplicate finds nothing left to do.
  Controller* ctl = cluster_->ControllerFor("job");
  auto created = ctl->ReReplicate("job", "kv");
  ASSERT_TRUE(created.ok()) << created.status();
  EXPECT_EQ(*created, 0u);
  ASSERT_TRUE((*kv)->RefreshMap().ok());
  auto map = (*kv)->CachedMap();
  ASSERT_EQ(map.entries[0].replicas.size(), 1u);
  EXPECT_NE(map.entries[0].block.server_id, primary.server_id);
  // The new replica holds a full copy.
  Block* rb = cluster_->ResolveBlock(map.entries[0].replicas[0]);
  ASSERT_NE(rb, nullptr);
  Block::OpLock lock(*rb);
  auto* shard = dynamic_cast<KvShard*>(rb->content());
  ASSERT_NE(shard, nullptr);
  EXPECT_EQ(shard->pair_count(), 10u);
}

TEST_F(ReplicationTest, FileSurvivesPrimaryFailure) {
  ASSERT_TRUE(client_->CreateAddrPrefix("/job/f", {}, Replicated(2)).ok());
  auto file = client_->OpenFile("/job/f");
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append("replicated-bytes").ok());
  cluster_->FailServer((*file)->CachedMap().entries[0].block.server_id);
  auto r = (*file)->Read(0, 16);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(*r, "replicated-bytes");
  // Appends continue against the promoted primary.
  ASSERT_TRUE((*file)->Append("+more").ok());
  EXPECT_EQ(*(*file)->Read(16, 5), "+more");
}

TEST_F(ReplicationTest, QueueSurvivesPrimaryFailure) {
  ASSERT_TRUE(client_->CreateAddrPrefix("/job/q", {}, Replicated(2)).ok());
  auto q = client_->OpenQueue("/job/q");
  ASSERT_TRUE(q.ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE((*q)->Enqueue("item" + std::to_string(i)).ok());
  }
  ASSERT_EQ(*(*q)->Dequeue(), "item0");  // Replica mirrors the pop.
  cluster_->FailServer((*q)->CachedMap().entries[0].block.server_id);
  for (int i = 1; i < 5; ++i) {
    auto item = (*q)->Dequeue();
    ASSERT_TRUE(item.ok()) << i << ": " << item.status();
    EXPECT_EQ(*item, "item" + std::to_string(i));
  }
}

TEST_F(ReplicationTest, ExpiryReclaimsReplicasToo) {
  JiffyCluster::Options opts;
  opts.config.num_memory_servers = 4;
  opts.config.blocks_per_server = 16;
  opts.config.block_size_bytes = 16 << 10;
  opts.config.lease_duration = 1 * kSecond;
  SimClock clock;
  opts.clock = &clock;
  JiffyCluster cluster(opts);
  JiffyClient client(&cluster);
  ASSERT_TRUE(client.RegisterJob("j").ok());
  CreateOptions copts;
  copts.replication_factor = 3;
  ASSERT_TRUE(client.CreateAddrPrefix("/j/kv", {}, copts).ok());
  ASSERT_TRUE(client.OpenKv("/j/kv").ok());
  EXPECT_EQ(cluster.allocator()->allocated_count(), 3u);
  clock.AdvanceBy(2 * kSecond);
  EXPECT_EQ(cluster.controller_shard(0)->RunExpiryScan(), 1u);
  EXPECT_EQ(cluster.allocator()->allocated_count(), 0u);
}

TEST_F(ReplicationTest, DeadServerBlocksAreNotReallocated) {
  BlockAllocator alloc(2, 4);
  auto a = alloc.Allocate("o");
  ASSERT_TRUE(a.ok());
  alloc.MarkServerDead(a->server_id);
  EXPECT_TRUE(alloc.IsServerDead(a->server_id));
  // Freeing a dead server's block retires it instead of recycling it.
  ASSERT_TRUE(alloc.Free(*a).ok());
  for (int i = 0; i < 4; ++i) {
    auto id = alloc.Allocate("o");
    ASSERT_TRUE(id.ok());
    EXPECT_NE(id->server_id, a->server_id);
  }
  EXPECT_EQ(alloc.Allocate("o").status().code(), StatusCode::kOutOfMemory);
}

// --- Access control (Fig 7) ----------------------------------------------------

TEST_F(ReplicationTest, ForeignPrincipalDeniedOnPrivatePrefix) {
  CreateOptions opts;
  opts.init_ds = true;
  opts.ds_type = DsType::kKvStore;
  opts.world_readable = false;
  opts.world_writable = false;
  ASSERT_TRUE(client_->CreateAddrPrefix("/job/private", {}, opts).ok());
  JiffyClient intruder(cluster_.get(), "other-job");
  auto denied = intruder.OpenKv("/job/private");
  EXPECT_EQ(denied.status().code(), StatusCode::kPermissionDenied);
  // The owner (in-job client) still gets through.
  EXPECT_TRUE(client_->OpenKv("/job/private").ok());
}

TEST_F(ReplicationTest, WorldReadablePrefixAllowsForeignReaders) {
  CreateOptions opts;
  opts.init_ds = true;
  opts.ds_type = DsType::kKvStore;
  opts.world_readable = true;
  opts.world_writable = false;
  ASSERT_TRUE(client_->CreateAddrPrefix("/job/shared", {}, opts).ok());
  auto owner_kv = client_->OpenKv("/job/shared");
  ASSERT_TRUE(owner_kv.ok());
  ASSERT_TRUE((*owner_kv)->Put("k", "published").ok());
  JiffyClient reader(cluster_.get(), "consumer-job");
  auto kv = reader.OpenKv("/job/shared");
  ASSERT_TRUE(kv.ok()) << kv.status();
  EXPECT_EQ(*(*kv)->Get("k"), "published");
}

// --- Synchronous persistence (§4.2.2) --------------------------------------------

TEST_F(ReplicationTest, SynchronousPersistenceWritesThrough) {
  CreateOptions opts;
  opts.persist_writes = true;
  ASSERT_TRUE(client_->CreateAddrPrefix("/job/durable", {}, opts).ok());
  auto kv = client_->OpenKv("/job/durable");
  ASSERT_TRUE(kv.ok());
  ASSERT_TRUE((*kv)->Put("k1", "v1").ok());
  // Every committed write landed on the external store synchronously.
  auto objects = cluster_->backing()->List("sync/job/durable/");
  ASSERT_EQ(objects.size(), 1u);
  auto object = cluster_->backing()->Get(objects[0]);
  ASSERT_TRUE(object.ok());
  EXPECT_NE(object->find("v1"), std::string::npos);
  // Later writes refresh the same object.
  ASSERT_TRUE((*kv)->Put("k2", "v2").ok());
  object = cluster_->backing()->Get(objects[0]);
  EXPECT_NE(object->find("v2"), std::string::npos);
}

TEST_F(ReplicationTest, UnpersistedPrefixWritesNothing) {
  ASSERT_TRUE(client_->CreateAddrPrefix("/job/volatile", {}).ok());
  auto kv = client_->OpenKv("/job/volatile");
  ASSERT_TRUE(kv.ok());
  ASSERT_TRUE((*kv)->Put("k", "v").ok());
  EXPECT_TRUE(cluster_->backing()->List("sync/job/volatile/").empty());
}

}  // namespace
}  // namespace jiffy
