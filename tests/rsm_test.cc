// Replicated control plane (DESIGN.md §14): leader election, quorum commit,
// the controller-crash-at-every-point matrix, read-lease linearizability
// with a partitioned leader, exactly-once Cas across failover, and
// snapshot-as-log-compaction catch-up.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/client/jiffy_client.h"
#include "src/rsm/group.h"

namespace jiffy {
namespace {

std::unique_ptr<JiffyCluster> MakeReplicated(uint32_t replicas,
                                             Clock* clock = nullptr,
                                             uint64_t snap_threshold = 512) {
  JiffyCluster::Options opts;
  opts.config.num_memory_servers = 4;
  opts.config.blocks_per_server = 32;
  opts.config.block_size_bytes = 16 << 10;
  opts.config.controller_shards = 1;
  opts.config.controller_replicas = replicas;
  opts.config.rsm_snapshot_threshold = snap_threshold;
  opts.config.background_repartition = false;
  if (clock != nullptr) {
    opts.clock = clock;
  }
  return std::make_unique<JiffyCluster>(opts);
}

// Creates /job/{a,b,c} with a KV under /job/a and returns the cluster.
void SeedJob(JiffyClient* client) {
  ASSERT_TRUE(client->RegisterJob("job").ok());
  ASSERT_TRUE(client
                  ->CreateHierarchy("job", {{"a", {}}, {"b", {"a"}},
                                            {"c", {"a"}}})
                  .ok());
  auto kv = client->OpenKv("/job/a");
  ASSERT_TRUE(kv.ok()) << kv.status().ToString();
}

int LeaderIndex(JiffyCluster* cluster) {
  rsm::ControllerGroup* group = cluster->controller_group(0);
  // Force an election if none happened yet.
  group->LeaderController();
  return group->leader_index();
}

TEST(RsmTest, UnreplicatedClusterHasNoGroup) {
  auto cluster = MakeReplicated(1);
  EXPECT_EQ(cluster->controller_group(0), nullptr);
  JiffyClient client(cluster.get());
  SeedJob(&client);
  EXPECT_TRUE(client.RenewLease("/job/a").ok());
}

TEST(RsmTest, ElectsLeaderAndServesMetadataOps) {
  auto cluster = MakeReplicated(3);
  rsm::ControllerGroup* group = cluster->controller_group(0);
  ASSERT_NE(group, nullptr);
  EXPECT_EQ(group->QuorumSize(), 2);
  JiffyClient client(cluster.get());
  SeedJob(&client);
  const int leader = LeaderIndex(cluster.get());
  ASSERT_GE(leader, 0);
  // Exactly one replica is materialized and leading.
  int leaders = 0;
  for (int i = 0; i < group->size(); ++i) {
    leaders += group->replica(i)->is_leader() ? 1 : 0;
  }
  EXPECT_EQ(leaders, 1);
  // The log committed the seed mutations on every replica.
  for (int i = 0; i < group->size(); ++i) {
    EXPECT_GT(group->replica(i)->last_index(), 0u) << "replica " << i;
  }
  EXPECT_TRUE(client.RenewLease("/job/b").ok());
  EXPECT_TRUE(client.GetLeaseDuration("/job/a").ok());
}

TEST(RsmTest, LeaderCrashLosesNoCommittedMutations) {
  auto cluster = MakeReplicated(3);
  rsm::ControllerGroup* group = cluster->controller_group(0);
  JiffyClient client(cluster.get());
  SeedJob(&client);
  ASSERT_TRUE(client.RenewLease("/job/a").ok());  // Memoize a renewal plan.
  const int old_leader = LeaderIndex(cluster.get());
  group->Crash(old_leader);
  // The client rides through the failover: lookups and mutations against
  // the promoted replica see every committed prefix.
  EXPECT_TRUE(client.GetLeaseDuration("/job/a").ok());
  EXPECT_TRUE(client.GetLeaseDuration("/job/c").ok());
  // Satellite check: the renewal plan memoized on the old leader must not
  // leak into the promoted hierarchy (plans are invalidated on promotion).
  EXPECT_TRUE(client.RenewLease("/job/a").ok());
  EXPECT_TRUE(client.CreateAddrPrefix("/job/d", {"a"}).ok());
  const int new_leader = LeaderIndex(cluster.get());
  EXPECT_NE(new_leader, old_leader);
  // The crashed replica rejoins as a follower and catches up.
  group->Restart(old_leader);
  EXPECT_TRUE(client.CreateAddrPrefix("/job/e", {"a"}).ok());
  EXPECT_EQ(group->replica(old_leader)->last_index(),
            group->replica(new_leader)->last_index());
}

// The tentpole matrix: kill a replica at every point of the commit
// protocol and verify no committed lease/DAG mutation is ever lost and no
// uncommitted one ever resurfaces without being re-applied.
TEST(RsmFaultMatrixTest, ControllerCrashAtEveryPoint) {
  const struct {
    rsm::CrashPoint point;
    bool crash_leader;  // false = arm a follower instead
    const char* name;
  } kCases[] = {
      {rsm::CrashPoint::kLeaderAfterAppend, true, "leader-after-append"},
      {rsm::CrashPoint::kLeaderAfterReplicate, true,
       "leader-after-replicate"},
      {rsm::CrashPoint::kLeaderAfterCommit, true, "leader-after-commit"},
      {rsm::CrashPoint::kFollowerBeforeAppend, false,
       "follower-before-append"},
      {rsm::CrashPoint::kFollowerAfterAppend, false,
       "follower-after-append"},
  };
  for (const auto& c : kCases) {
    SCOPED_TRACE(c.name);
    auto cluster = MakeReplicated(3);
    rsm::ControllerGroup* group = cluster->controller_group(0);
    JiffyClient client(cluster.get());
    SeedJob(&client);
    ASSERT_TRUE(client.CreateAddrPrefix("/job/committed", {"a"}).ok());
    const int leader = LeaderIndex(cluster.get());
    ASSERT_GE(leader, 0);
    const int victim = c.crash_leader ? leader : (leader + 1) % 3;
    group->ArmCrash(victim, c.point);
    // The client's retry layer masks the crash: by the time this returns,
    // a (possibly new) leader has applied the mutation exactly once.
    Status st = client.CreateAddrPrefix("/job/target", {"a"});
    EXPECT_TRUE(st.ok() || st.code() == StatusCode::kAlreadyExists)
        << st.ToString();
    // Invariant 1: the earlier committed mutation is never lost.
    EXPECT_TRUE(client.GetLeaseDuration("/job/committed").ok());
    // Invariant 2: the targeted mutation is now visible exactly once —
    // creating it again must report AlreadyExists, not succeed.
    EXPECT_EQ(client.CreateAddrPrefix("/job/target", {"a"}).code(),
              StatusCode::kAlreadyExists);
    // The victim restarts, rejoins, and the group keeps serving.
    group->Restart(victim);
    EXPECT_TRUE(client.CreateAddrPrefix("/job/after", {"a"}).ok());
    const int final_leader = group->leader_index();
    ASSERT_GE(final_leader, 0);
    for (int i = 0; i < group->size(); ++i) {
      EXPECT_EQ(group->replica(i)->last_index(),
                group->replica(final_leader)->last_index())
          << "replica " << i << " diverged";
    }
  }
}

TEST(RsmFaultMatrixTest, ExactlyOnceCasAcrossFailover) {
  auto cluster = MakeReplicated(3);
  rsm::ControllerGroup* group = cluster->controller_group(0);
  JiffyClient client(cluster.get());
  SeedJob(&client);
  // Crash the leader after the Cas quorum-committed but before the client
  // heard back — the worst case for at-most-once.
  group->ArmCrash(LeaderIndex(cluster.get()),
                  rsm::CrashPoint::kLeaderAfterCommit);
  auto first = client.Cas("/job/a", "owner", "", "worker-1");
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  // The retry that rode through the failover must observe the original
  // outcome (applied), not a kFailedPrecondition replay artifact.
  EXPECT_TRUE(first->applied);
  EXPECT_EQ(first->previous, "");
  // The swap happened exactly once: a competing Cas sees the new value.
  auto second = client.Cas("/job/a", "owner", "", "worker-2");
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_FALSE(second->applied);
  EXPECT_EQ(second->previous, "worker-1");
  // And a correctly-conditioned Cas still works on the promoted leader.
  auto third = client.Cas("/job/a", "owner", "worker-1", "worker-2");
  ASSERT_TRUE(third.ok());
  EXPECT_TRUE(third->applied);
}

TEST(RsmFaultMatrixTest, PartitionedLeaderReadLeaseStaysLinearizable) {
  SimClock clock(1 * kSecond);
  auto cluster = MakeReplicated(3, &clock);
  rsm::ControllerGroup* group = cluster->controller_group(0);
  JiffyClient client(cluster.get());
  SeedJob(&client);
  const int old_leader = LeaderIndex(cluster.get());
  rsm::Replica* old_rep = group->replica(old_leader);
  ASSERT_TRUE(old_rep->MayServeReads());
  const JiffyConfig& cfg = cluster->config();
  // Partition (don't crash) the leader: it may keep serving leased local
  // reads until its lease lapses.
  group->Partition(old_leader);
  EXPECT_TRUE(old_rep->MayServeReads());
  // Electing a new leader must NOT let it serve reads while the old
  // leader's lease could still be live — that window is where a stale read
  // could violate linearizability.
  ASSERT_TRUE(group->EnsureLeader().ok());
  const int new_leader = group->leader_index();
  ASSERT_GE(new_leader, 0);
  ASSERT_NE(new_leader, old_leader);
  EXPECT_FALSE(group->replica(new_leader)->MayServeReads());
  // Once the old lease has provably lapsed, both sides flip: the old
  // leader stops answering, the new one starts.
  clock.AdvanceBy(cfg.rsm_read_lease + 1);
  EXPECT_FALSE(old_rep->MayServeReads());
  // A fresh lookup heartbeats the new leader (refreshing its own lease)
  // and then serves locally.
  EXPECT_TRUE(client.GetLeaseDuration("/job/a").ok());
  EXPECT_TRUE(group->replica(new_leader)->MayServeReads());
  // The healed old leader rejoins as a follower.
  group->Heal();
  EXPECT_TRUE(client.CreateAddrPrefix("/job/d", {"a"}).ok());
  EXPECT_FALSE(old_rep->is_leader());
}

TEST(RsmFaultMatrixTest, TwoElectionsBackToBack) {
  auto cluster = MakeReplicated(5);
  rsm::ControllerGroup* group = cluster->controller_group(0);
  JiffyClient client(cluster.get());
  SeedJob(&client);
  const int first = LeaderIndex(cluster.get());
  group->Crash(first);
  EXPECT_TRUE(client.CreateAddrPrefix("/job/x", {"a"}).ok());
  const int second = group->leader_index();
  ASSERT_GE(second, 0);
  ASSERT_NE(second, first);
  group->Crash(second);
  // 3 of 5 alive: still a quorum; a third leader picks up both epochs'
  // committed state.
  EXPECT_TRUE(client.GetLeaseDuration("/job/x").ok());
  EXPECT_TRUE(client.CreateAddrPrefix("/job/y", {"x"}).ok());
  const int third = group->leader_index();
  ASSERT_GE(third, 0);
  EXPECT_NE(third, first);
  EXPECT_NE(third, second);
  group->Restart(first);
  group->Restart(second);
  EXPECT_TRUE(client.CreateAddrPrefix("/job/z", {"y"}).ok());
  for (int i = 0; i < group->size(); ++i) {
    EXPECT_EQ(group->replica(i)->last_index(),
              group->replica(third)->last_index());
  }
}

TEST(RsmFaultMatrixTest, NoQuorumFailsCleanAndRecovers) {
  auto cluster = MakeReplicated(3);
  rsm::ControllerGroup* group = cluster->controller_group(0);
  JiffyClient client(cluster.get());
  SeedJob(&client);
  const int leader = LeaderIndex(cluster.get());
  group->Crash(leader);
  group->Crash((leader + 1) % 3);
  // One survivor: every mutation and lookup reports kUnavailable rather
  // than serving possibly-stale metadata.
  EXPECT_EQ(client.CreateAddrPrefix("/job/x", {"a"}).code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(client.GetLeaseDuration("/job/a").status().code(),
            StatusCode::kUnavailable);
  // Restarting one replica restores a quorum; nothing committed was lost
  // and the refused mutation was never half-applied.
  group->Restart(leader);
  EXPECT_TRUE(client.GetLeaseDuration("/job/a").ok());
  EXPECT_TRUE(client.CreateAddrPrefix("/job/x", {"a"}).ok());
}

TEST(RsmSnapshotTest, CompactionInstallsAndFollowerCatchesUp) {
  // Tiny threshold: compaction triggers during normal traffic.
  auto cluster = MakeReplicated(3, nullptr, /*snap_threshold=*/8);
  rsm::ControllerGroup* group = cluster->controller_group(0);
  JiffyClient client(cluster.get());
  SeedJob(&client);
  const int leader = LeaderIndex(cluster.get());
  const int lagging = (leader + 1) % 3;
  group->Crash(lagging);
  for (int i = 0; i < 24; ++i) {
    ASSERT_TRUE(client
                    .CreateAddrPrefix("/job/n" + std::to_string(i), {"a"})
                    .ok());
  }
  // The log compacted well below the mutation count.
  rsm::Replica* lead = group->replica(group->leader_index());
  EXPECT_LT(lead->last_index() - lead->commit_index(), 1u);
  // The restarted replica is far behind the compacted prefix: it can only
  // catch up through InstallSnapshot.
  group->Restart(lagging);
  ASSERT_TRUE(client.CreateAddrPrefix("/job/final", {"a"}).ok());
  EXPECT_EQ(group->replica(lagging)->last_index(), lead->last_index());
  // Prove the snapshot carried real state: crash everyone but the
  // once-lagging replica's quorum partner and promote it.
  group->Crash(group->leader_index());
  EXPECT_TRUE(client.GetLeaseDuration("/job/n0").ok());
  EXPECT_TRUE(client.GetLeaseDuration("/job/n23").ok());
  EXPECT_TRUE(client.GetLeaseDuration("/job/final").ok());
}

TEST(RsmSnapshotTest, CrashDuringSnapshotInstall) {
  auto cluster = MakeReplicated(3);
  rsm::ControllerGroup* group = cluster->controller_group(0);
  JiffyClient client(cluster.get());
  SeedJob(&client);
  const int leader = LeaderIndex(cluster.get());
  const int victim = (leader + 1) % 3;
  group->ArmCrash(victim, rsm::CrashPoint::kFollowerDuringSnapshotInstall);
  // Forced compaction pushes InstallSnapshot at the armed follower, which
  // dies mid-install; the snapshot must not be half-applied.
  ASSERT_TRUE(group->CompactNow().ok());
  EXPECT_TRUE(group->replica(victim)->crashed());
  // The group keeps committing on the surviving quorum.
  EXPECT_TRUE(client.CreateAddrPrefix("/job/x", {"a"}).ok());
  // The victim restarts with nothing of the discarded snapshot and is
  // re-synced (snapshot again + suffix).
  group->Restart(victim);
  EXPECT_TRUE(client.CreateAddrPrefix("/job/y", {"a"}).ok());
  EXPECT_EQ(group->replica(victim)->last_index(),
            group->replica(group->leader_index())->last_index());
  // Failover onto the re-synced replica: full state present.
  group->Crash(group->leader_index());
  EXPECT_TRUE(client.GetLeaseDuration("/job/x").ok());
  EXPECT_TRUE(client.GetLeaseDuration("/job/y").ok());
}

TEST(RsmSnapshotTest, SnapshotStampsAppliedIndex) {
  auto cluster = MakeReplicated(3);
  rsm::ControllerGroup* group = cluster->controller_group(0);
  JiffyClient client(cluster.get());
  SeedJob(&client);
  Controller* leader = group->LeaderController();
  rsm::Replica* rep = group->replica(group->leader_index());
  const std::string snap = leader->Snapshot(rep->commit_index());
  EXPECT_EQ(Controller::SnapshotAppliedIndex(snap), rep->commit_index());
  EXPECT_GT(rep->commit_index(), 0u);
  // The plain overload stamps 0 ("no log attached") but stays restorable.
  const std::string plain = leader->Snapshot();
  EXPECT_EQ(Controller::SnapshotAppliedIndex(plain), 0u);
}

TEST(RsmMigrationTest, MigrationBracketSurvivesFailover) {
  auto cluster = MakeReplicated(3);
  rsm::ControllerGroup* group = cluster->controller_group(0);
  JiffyClient client(cluster.get());
  SeedJob(&client);
  Controller* leader = group->LeaderController();
  auto map = leader->GetPartitionMap("job", "a");
  ASSERT_TRUE(map.ok());
  ASSERT_EQ(map->entries.size(), 1u);
  const BlockId src = map->entries[0].block;
  const uint64_t lo = map->entries[0].lo;
  const uint64_t hi = map->entries[0].hi;
  const uint64_t mid = (lo + hi) / 2;
  // A repartitioner-style split: bracket the source, allocate the
  // destination, then lose the leader before the commit.
  ASSERT_TRUE(leader->BeginMigration("job", "a", src).ok());
  auto dest = leader->AllocateUnmapped("job", "a", mid, hi);
  ASSERT_TRUE(dest.ok()) << dest.status().ToString();
  const int old_leader = group->leader_index();
  group->Crash(old_leader);
  // The promoted leader preserved the bracket (snapshot v3 serializes
  // `migrating`), so a commit that requires it still goes through — this
  // is the repartitioner re-resolving the controller after failover.
  Controller* promoted = group->LeaderController();
  ASSERT_NE(promoted, leader);
  PartitionEntry new_entry;
  new_entry.block = *dest;
  new_entry.lo = mid;
  new_entry.hi = hi;
  ASSERT_TRUE(promoted
                  ->CommitSplit("job", "a", src, lo, mid, new_entry,
                                /*require_migrating=*/true)
                  .ok());
  auto after = promoted->GetPartitionMap("job", "a");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->entries.size(), 2u);
  for (const auto& e : after->entries) {
    EXPECT_FALSE(e.migrating);
  }
}

TEST(RsmMigrationTest, AbortAfterFailoverClearsBracket) {
  auto cluster = MakeReplicated(3);
  rsm::ControllerGroup* group = cluster->controller_group(0);
  JiffyClient client(cluster.get());
  SeedJob(&client);
  Controller* leader = group->LeaderController();
  auto map = leader->GetPartitionMap("job", "a");
  ASSERT_TRUE(map.ok());
  const BlockId src = map->entries[0].block;
  ASSERT_TRUE(leader->BeginMigration("job", "a", src).ok());
  group->Crash(group->leader_index());
  // Post-failover abort path: EndMigration against the new leader clears
  // the bracket instead of leaving `migrating` stuck forever (which would
  // wedge lease expiry for the prefix).
  Controller* promoted = group->LeaderController();
  ASSERT_TRUE(promoted->EndMigration("job", "a", src).ok());
  auto after = promoted->GetPartitionMap("job", "a");
  ASSERT_TRUE(after.ok());
  for (const auto& e : after->entries) {
    EXPECT_FALSE(e.migrating);
  }
  // A fresh migration bracket can now be taken.
  EXPECT_TRUE(promoted->BeginMigration("job", "a", src).ok());
  EXPECT_TRUE(promoted->EndMigration("job", "a", src).ok());
}

TEST(RsmMigrationTest, ColdRestoreClearsBracketByDefault) {
  // Single-controller standby restore (pre-§14 path): the old
  // repartitioner is gone with the old process, so `migrating` must NOT
  // survive — the source still holds all data and expiry must not stay
  // deferred forever.
  auto cluster = MakeReplicated(1);
  JiffyClient client(cluster.get());
  SeedJob(&client);
  Controller* ctl = cluster->controller_shard(0);
  auto map = ctl->GetPartitionMap("job", "a");
  ASSERT_TRUE(map.ok());
  ASSERT_TRUE(ctl->BeginMigration("job", "a", map->entries[0].block).ok());
  const std::string snap = ctl->Snapshot();
  Controller standby(cluster->config(), cluster->clock(),
                     cluster->allocator(), cluster.get(),
                     cluster->backing());
  ASSERT_TRUE(standby.Restore(snap).ok());
  auto restored = standby.GetPartitionMap("job", "a");
  ASSERT_TRUE(restored.ok());
  for (const auto& e : restored->entries) {
    EXPECT_FALSE(e.migrating);
  }
  // The replicated path opts in to preserving it.
  Controller standby2(cluster->config(), cluster->clock(),
                      cluster->allocator(), cluster.get(),
                      cluster->backing());
  ASSERT_TRUE(standby2.Restore(snap, /*preserve_migrating=*/true).ok());
  auto restored2 = standby2.GetPartitionMap("job", "a");
  ASSERT_TRUE(restored2.ok());
  EXPECT_TRUE(restored2->entries[0].migrating);
}

}  // namespace
}  // namespace jiffy
