// Concurrency and fault stress tests: many clients hammering one data
// structure through scaling events, multi-producer/multi-consumer queues,
// failover under load, and expiry racing live writers.

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>

#include "src/client/jiffy_client.h"
#include "src/common/random.h"

namespace jiffy {
namespace {

std::unique_ptr<JiffyCluster> StressCluster(uint32_t blocks_per_server = 256,
                                            size_t block_size = 4096) {
  JiffyCluster::Options opts;
  opts.config.num_memory_servers = 4;
  opts.config.blocks_per_server = blocks_per_server;
  opts.config.block_size_bytes = block_size;
  opts.config.lease_duration = 3600 * kSecond;
  return std::make_unique<JiffyCluster>(opts);
}

TEST(StressTest, ConcurrentFileAppendersPreserveEveryRecord) {
  auto cluster = StressCluster();
  JiffyClient client(cluster.get());
  ASSERT_TRUE(client.RegisterJob("job").ok());
  ASSERT_TRUE(client.CreateAddrPrefix("/job/f", {}).ok());
  constexpr int kWriters = 4;
  constexpr int kRecords = 200;
  // Fixed-size records so they can be reparsed from any interleaving.
  auto record = [](int w, int i) {
    char buf[33];
    std::snprintf(buf, sizeof(buf), "W%02dR%06d%21s", w, i, "|");
    return std::string(buf, 32);
  };
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      auto file = client.OpenFile("/job/f");
      ASSERT_TRUE(file.ok());
      for (int i = 0; i < kRecords; ++i) {
        ASSERT_TRUE((*file)->Append(record(w, i)).ok()) << w << " " << i;
      }
    });
  }
  for (auto& t : writers) {
    t.join();
  }
  auto file = client.OpenFile("/job/f");
  ASSERT_TRUE(file.ok());
  auto size = (*file)->Size();
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, static_cast<uint64_t>(kWriters) * kRecords * 32);
  auto all = (*file)->Read(0, *size);
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all->size(), *size);
  // Every record appears exactly once (appends are atomic per record
  // because each record fits one Append call... except across block
  // boundaries, where a record may be split but its bytes stay ordered).
  std::set<std::string> seen;
  size_t found = 0;
  for (int w = 0; w < kWriters; ++w) {
    for (int i = 0; i < kRecords; ++i) {
      const std::string r = record(w, i).substr(0, 10);  // "WxxRyyyyyy".
      if (all->find(r) != std::string::npos) {
        found++;
      }
    }
  }
  EXPECT_EQ(found, static_cast<size_t>(kWriters) * kRecords);
}

TEST(StressTest, QueueMpmcExactlyOnceDelivery) {
  auto cluster = StressCluster();
  JiffyClient client(cluster.get());
  ASSERT_TRUE(client.RegisterJob("job").ok());
  ASSERT_TRUE(client.CreateAddrPrefix("/job/q", {}).ok());
  constexpr int kProducers = 3;
  constexpr int kConsumers = 3;
  constexpr int kItems = 400;
  std::vector<std::thread> threads;
  std::mutex seen_mu;
  std::multiset<std::string> seen;
  std::atomic<int> consumed{0};
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      auto q = client.OpenQueue("/job/q");
      ASSERT_TRUE(q.ok());
      for (int i = 0; i < kItems; ++i) {
        std::string item = "p" + std::to_string(p) + ":" + std::to_string(i) +
                           std::string(24, '.');
        ASSERT_TRUE((*q)->Enqueue(std::move(item)).ok());
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      auto q = client.OpenQueue("/job/q");
      ASSERT_TRUE(q.ok());
      while (consumed.load() < kProducers * kItems) {
        auto item = (*q)->DequeueWait(3 * kSecond);
        if (!item.ok()) {
          break;
        }
        {
          std::lock_guard<std::mutex> lock(seen_mu);
          seen.insert(item->substr(0, item->find('.')));
        }
        consumed.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(consumed.load(), kProducers * kItems);
  // Exactly-once: no duplicates, no losses.
  EXPECT_EQ(seen.size(), static_cast<size_t>(kProducers) * kItems);
  for (const auto& item : seen) {
    EXPECT_EQ(seen.count(item), 1u) << item;
  }
}

TEST(StressTest, KvChurnWithConcurrentReadersThroughSplitsAndMerges) {
  auto cluster = StressCluster();
  JiffyClient client(cluster.get());
  ASSERT_TRUE(client.RegisterJob("job").ok());
  ASSERT_TRUE(client.CreateAddrPrefix("/job/kv", {}).ok());
  std::atomic<bool> stop{false};
  // Stable keys a reader continuously verifies while a churner forces
  // splits (grow) and merges (shrink) underneath it.
  {
    auto kv = client.OpenKv("/job/kv");
    ASSERT_TRUE(kv.ok());
    for (int i = 0; i < 32; ++i) {
      ASSERT_TRUE(
          (*kv)->Put("stable" + std::to_string(i), "constant-value").ok());
    }
  }
  std::thread churner([&] {
    auto kv = client.OpenKv("/job/kv");
    ASSERT_TRUE(kv.ok());
    Rng rng(7);
    // Churn for at least 100 ms of wall time so the readers overlap real
    // split/merge activity even on a fast box.
    const TimeNs until = RealClock::Instance()->Now() + 100 * kMillisecond;
    for (int round = 0; RealClock::Instance()->Now() < until || round < 2;
         ++round) {
      for (int i = 0; i < 300; ++i) {
        ASSERT_TRUE((*kv)
                        ->Put("churn" + std::to_string(i),
                              std::string(80 + rng.NextBelow(40), 'c'))
                        .ok());
      }
      for (int i = 0; i < 300; ++i) {
        ASSERT_TRUE((*kv)->Delete("churn" + std::to_string(i)).ok());
      }
    }
  });
  std::vector<std::thread> readers;
  std::atomic<uint64_t> reads{0};
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      auto kv = client.OpenKv("/job/kv");
      ASSERT_TRUE(kv.ok());
      Rng rng(13);
      while (!stop.load()) {
        auto v = (*kv)->Get("stable" + std::to_string(rng.NextBelow(32)));
        ASSERT_TRUE(v.ok()) << v.status();
        ASSERT_EQ(*v, "constant-value");
        reads.fetch_add(1);
      }
    });
  }
  churner.join();
  stop.store(true);
  for (auto& t : readers) {
    t.join();
  }
  EXPECT_GT(reads.load(), 10u);
  // Drain queued pressure flags so the counters reflect processed scaling.
  if (cluster->repartitioner() != nullptr) {
    cluster->repartitioner()->WaitIdle();
  }
  // The state registry saw real scaling activity.
  auto state = cluster->registry()->Find("job", "kv");
  ASSERT_NE(state, nullptr);
  EXPECT_GT(state->splits.load() + state->merges.load(), 0u);
}

TEST(StressTest, ReplicatedKvFailoverUnderLoad) {
  auto cluster = StressCluster(64, 16 << 10);
  JiffyClient client(cluster.get());
  ASSERT_TRUE(client.RegisterJob("job").ok());
  CreateOptions opts;
  opts.replication_factor = 2;
  ASSERT_TRUE(client.CreateAddrPrefix("/job/kv", {}, opts).ok());
  auto seed_kv = client.OpenKv("/job/kv");
  ASSERT_TRUE(seed_kv.ok());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE((*seed_kv)->Put("k" + std::to_string(i), "v").ok());
  }
  const BlockId primary = (*seed_kv)->CachedMap().entries[0].block;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> oks{0};
  std::vector<std::thread> workers;
  for (int w = 0; w < 3; ++w) {
    workers.emplace_back([&, w] {
      auto kv = client.OpenKv("/job/kv");
      ASSERT_TRUE(kv.ok());
      Rng rng(w + 1);
      while (!stop.load()) {
        const std::string key = "k" + std::to_string(rng.NextBelow(50));
        auto v = (*kv)->Get(key);
        // Only kUnavailable-free results are acceptable: the chain replica
        // must absorb the failure transparently.
        ASSERT_TRUE(v.ok()) << v.status();
        oks.fetch_add(1);
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  cluster->FailServer(primary.server_id);  // Mid-load failure.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  stop.store(true);
  for (auto& t : workers) {
    t.join();
  }
  EXPECT_GT(oks.load(), 100u);
}

TEST(StressTest, ExpiryBetweenPhasesIsCleanlyReported) {
  JiffyCluster::Options opts;
  opts.config.num_memory_servers = 2;
  opts.config.blocks_per_server = 32;
  opts.config.block_size_bytes = 4096;
  opts.config.lease_duration = 1 * kSecond;
  SimClock clock;
  opts.clock = &clock;
  JiffyCluster cluster(opts);
  JiffyClient client(&cluster);
  ASSERT_TRUE(client.RegisterJob("j").ok());
  ASSERT_TRUE(client.CreateAddrPrefix("/j/kv", {}).ok());
  auto kv = client.OpenKv("/j/kv");
  ASSERT_TRUE(kv.ok());
  for (int round = 0; round < 3; ++round) {
    // Phase 1: write with a live lease.
    ASSERT_TRUE(client.RenewLease("/j/kv").ok());
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE((*kv)->Put("r" + std::to_string(round) + "-" +
                                 std::to_string(i),
                             "v")
                      .ok());
    }
    // Phase 2: lease lapses; operations report kLeaseExpired, not garbage.
    clock.AdvanceBy(2 * kSecond);
    ASSERT_EQ(cluster.controller_shard(0)->RunExpiryScan(), 1u);
    EXPECT_EQ((*kv)->Get("r0-0").status().code(), StatusCode::kLeaseExpired);
    EXPECT_EQ((*kv)->Put("x", "y").code(), StatusCode::kLeaseExpired);
    // Phase 3: reload revives everything written so far.
    ASSERT_TRUE(client.LoadAddrPrefix("/j/kv", "jiffy/j/kv").ok());
    for (int rr = 0; rr <= round; ++rr) {
      auto v = (*kv)->Get("r" + std::to_string(rr) + "-7");
      ASSERT_TRUE(v.ok()) << "round " << round << " rr " << rr << ": "
                          << v.status();
    }
  }
}

}  // namespace
}  // namespace jiffy
