// Causal trace-context propagation (DESIGN.md §6): one client op's
// trace_id must reach every layer it touches — client span, transport
// round trips, server-side block operators, and background work
// (repartitioner, repair) that it triggered — with parent links that chain
// back to the client root, in-process and in the exported Chrome JSON.

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "src/client/jiffy_client.h"
#include "src/obs/trace.h"

namespace jiffy {
namespace {

// Restores tracer/flag state on scope exit (mirrors obs_test.cc).
class TraceStateGuard {
 public:
  TraceStateGuard()
      : enabled_(obs::Enabled()),
        trace_enabled_(obs::Tracer::Global()->enabled()) {
    obs::SetEnabled(true);
    obs::Tracer::Global()->SetEnabled(true);
    obs::SetTraceSampleEvery(1);
    obs::Tracer::Global()->Clear();
  }
  ~TraceStateGuard() {
    obs::SetEnabled(enabled_);
    obs::Tracer::Global()->SetEnabled(trace_enabled_);
    obs::SetTraceSampleEvery(1);
    obs::Tracer::Global()->Clear();
  }

 private:
  bool enabled_;
  bool trace_enabled_;
};

std::vector<obs::TraceEvent> EventsNamed(
    const std::vector<obs::TraceEvent>& events, std::string_view name) {
  std::vector<obs::TraceEvent> out;
  for (const auto& e : events) {
    if (std::string_view(e.name) == name) {
      out.push_back(e);
    }
  }
  return out;
}

// Follows parent links from `span_id` up to a root within one trace.
// Returns true iff the chain reaches `ancestor` before running out.
bool ChainsTo(const std::map<uint64_t, const obs::TraceEvent*>& by_span,
              uint64_t span_id, uint64_t ancestor) {
  for (int hops = 0; hops < 64; ++hops) {
    if (span_id == ancestor) {
      return true;
    }
    auto it = by_span.find(span_id);
    if (it == by_span.end() || it->second->parent_id == 0) {
      return false;
    }
    span_id = it->second->parent_id;
  }
  return false;
}

// --- Context mechanics -------------------------------------------------------

TEST(TraceContextTest, ChildInheritsTraceIdAndLinksToParent) {
  TraceStateGuard guard;
  obs::TraceContext outer_ctx;
  {
    obs::TraceSpan outer("outer", "test");
    outer_ctx = outer.context();
    ASSERT_TRUE(outer_ctx.active());
    EXPECT_EQ(outer_ctx.parent_id, 0u);  // Fresh root.
    { JIFFY_TRACE_SPAN("inner", "test"); }
  }
  const auto events = obs::Tracer::Global()->Collect();
  const auto inner = EventsNamed(events, "inner");
  ASSERT_EQ(inner.size(), 1u);
  EXPECT_EQ(inner[0].trace_id, outer_ctx.trace_id);
  EXPECT_EQ(inner[0].parent_id, outer_ctx.span_id);
  EXPECT_NE(inner[0].span_id, outer_ctx.span_id);
}

TEST(TraceContextTest, ExplicitParentCarriesAcrossThreads) {
  TraceStateGuard guard;
  obs::TraceContext handoff;
  {
    obs::TraceSpan root("producer", "test");
    handoff = obs::CurrentTraceContext();
  }
  ASSERT_TRUE(handoff.active());
  std::thread worker([&handoff] {
    JIFFY_TRACE_SPAN_UNDER("consumer", "worker", handoff);
  });
  worker.join();
  const auto events = obs::Tracer::Global()->Collect();
  const auto producer = EventsNamed(events, "producer");
  const auto consumer = EventsNamed(events, "consumer");
  ASSERT_EQ(producer.size(), 1u);
  ASSERT_EQ(consumer.size(), 1u);
  EXPECT_EQ(consumer[0].trace_id, producer[0].trace_id);
  EXPECT_EQ(consumer[0].parent_id, producer[0].span_id);
  EXPECT_NE(consumer[0].tid, producer[0].tid);
  // Cross-thread parent links are rendered as Chrome flow-event pairs.
  const std::string json = obs::Tracer::Global()->ToChromeJson();
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);
}

TEST(TraceContextTest, InactiveExplicitParentFallsBackToThreadLocal) {
  TraceStateGuard guard;
  const obs::TraceContext none;  // E.g. a hint flagged while tracing was off.
  obs::TraceContext outer_ctx;
  {
    obs::TraceSpan outer("outer", "test");
    outer_ctx = outer.context();
    { JIFFY_TRACE_SPAN_UNDER("under_none", "test", none); }
  }
  const auto events = obs::Tracer::Global()->Collect();
  const auto under = EventsNamed(events, "under_none");
  ASSERT_EQ(under.size(), 1u);
  EXPECT_EQ(under[0].trace_id, outer_ctx.trace_id);
  EXPECT_EQ(under[0].parent_id, outer_ctx.span_id);
}

TEST(TraceContextTest, SamplingSuppressesWholeSubtrees) {
  TraceStateGuard guard;
  obs::SetTraceSampleEvery(2);
  // Two root+child pairs on one thread: exactly one pair wins the 1-in-2
  // coin flip (the per-thread phase is unknown, the count is not).
  for (int i = 0; i < 2; ++i) {
    obs::TraceSpan root("s_root", "test");
    JIFFY_TRACE_SPAN("s_child", "test");
  }
  obs::SetTraceSampleEvery(1);
  const auto events = obs::Tracer::Global()->Collect();
  const auto roots = EventsNamed(events, "s_root");
  const auto children = EventsNamed(events, "s_child");
  // Suppressed spans still record (ring pressure unchanged) — with zero ids.
  ASSERT_EQ(roots.size(), 2u);
  ASSERT_EQ(children.size(), 2u);
  int sampled_roots = 0, sampled_children = 0;
  for (const auto& e : roots) {
    sampled_roots += e.trace_id != 0 ? 1 : 0;
  }
  for (const auto& e : children) {
    sampled_children += e.trace_id != 0 ? 1 : 0;
  }
  EXPECT_EQ(sampled_roots, 1);
  EXPECT_EQ(sampled_children, 1);  // The child follows its root's fate.
}

TEST(TraceContextTest, InternedNamePointersAreStable) {
  const char* a = obs::InternedName("tenant-alpha");
  const char* b = obs::InternedName("tenant-alpha");
  const char* c = obs::InternedName("tenant-beta");
  EXPECT_EQ(a, b);  // Same string → same pointer (usable as a span name).
  EXPECT_NE(a, c);
  EXPECT_EQ(std::string_view(a), "tenant-alpha");
  EXPECT_EQ(std::string_view(c), "tenant-beta");
}

// --- End-to-end propagation --------------------------------------------------

class TraceClusterTest : public ::testing::Test {
 protected:
  std::unique_ptr<JiffyCluster> MakeCluster(uint32_t block_size = 16 << 10) {
    JiffyCluster::Options opts;
    opts.config.num_memory_servers = 4;
    opts.config.blocks_per_server = 64;
    opts.config.block_size_bytes = block_size;
    opts.config.lease_duration = 3600 * kSecond;
    return std::make_unique<JiffyCluster>(opts);
  }
};

TEST_F(TraceClusterTest, ClientOpStampsOneTraceIdAcrossLayers) {
  TraceStateGuard guard;
  auto cluster = MakeCluster();
  JiffyClient client(cluster.get());
  ASSERT_TRUE(client.RegisterJob("job").ok());
  ASSERT_TRUE(client.CreateAddrPrefix("/job/kv", {}).ok());
  auto kv = client.OpenKv("/job/kv");
  ASSERT_TRUE(kv.ok());
  obs::Tracer::Global()->Clear();  // Only the op under test.
  ASSERT_TRUE((*kv)->Put("k", "v").ok());

  const auto events = obs::Tracer::Global()->Collect();
  const auto put = EventsNamed(events, "kv.put");
  ASSERT_EQ(put.size(), 1u);
  const uint64_t trace_id = put[0].trace_id;
  ASSERT_NE(trace_id, 0u);
  EXPECT_EQ(put[0].parent_id, 0u);  // The client op is the trace root.

  std::map<uint64_t, const obs::TraceEvent*> by_span;
  for (const auto& e : events) {
    if (e.trace_id == trace_id) {
      by_span[e.span_id] = &e;
    }
  }
  // Acceptance: the same trace_id on transport and server-block spans, each
  // chaining back to the client root via parent links.
  for (const char* layer : {"net.rtt", "block.kv_put"}) {
    const auto spans = EventsNamed(events, layer);
    ASSERT_FALSE(spans.empty()) << layer;
    for (const auto& e : spans) {
      EXPECT_EQ(e.trace_id, trace_id) << layer;
      EXPECT_TRUE(ChainsTo(by_span, e.span_id, put[0].span_id)) << layer;
    }
  }
  // The exported Chrome JSON carries the ids (hex) and the tenant label.
  std::ostringstream hex_id;
  hex_id << std::hex << trace_id;
  const std::string json = obs::Tracer::Global()->ToChromeJson();
  EXPECT_NE(json.find("\"trace\":\"" + hex_id.str() + "\""),
            std::string::npos);
  EXPECT_NE(json.find("\"name\":\"kv.put\""), std::string::npos);
  EXPECT_NE(json.find("\"tenant\":\"job\""), std::string::npos);
}

TEST_F(TraceClusterTest, RepartitionerLinksBackToTriggeringOp) {
  TraceStateGuard guard;
  // Small blocks so the write stream trips background splits.
  auto cluster = MakeCluster(/*block_size=*/4096);
  ASSERT_NE(cluster->repartitioner(), nullptr);
  JiffyClient client(cluster.get());
  ASSERT_TRUE(client.RegisterJob("job").ok());
  ASSERT_TRUE(client.CreateAddrPrefix("/job/kv", {}).ok());
  auto kv = client.OpenKv("/job/kv");
  ASSERT_TRUE(kv.ok());
  const std::string value(256, 'r');
  for (int i = 0; i < 120; ++i) {
    ASSERT_TRUE((*kv)->Put("k" + std::to_string(i), value).ok()) << i;
  }
  cluster->repartitioner()->WaitIdle();

  const auto events = obs::Tracer::Global()->Collect();
  const auto processed = EventsNamed(events, "repartition.process");
  ASSERT_FALSE(processed.empty()) << "no background repartition ran";

  std::set<uint64_t> client_traces;
  std::map<uint64_t, const obs::TraceEvent*> by_span;
  for (const auto& e : events) {
    if (std::string_view(e.name) == "kv.put") {
      client_traces.insert(e.trace_id);
    }
    by_span[e.span_id] = &e;
  }
  // At least one background migration joined the trace of the client op
  // that flagged it, linked to a span inside that op (cross-thread edge).
  bool linked = false;
  for (const auto& e : processed) {
    if (e.trace_id != 0 && client_traces.count(e.trace_id) > 0) {
      EXPECT_NE(e.parent_id, 0u);
      auto parent = by_span.find(e.parent_id);
      ASSERT_NE(parent, by_span.end());
      EXPECT_EQ(parent->second->trace_id, e.trace_id);
      linked = true;
    }
  }
  EXPECT_TRUE(linked) << "repartition.process never joined a client trace";
}

TEST_F(TraceClusterTest, CriticalPathDecomposesOneRequest) {
  TraceStateGuard guard;
  auto cluster = MakeCluster();
  JiffyClient client(cluster.get());
  ASSERT_TRUE(client.RegisterJob("job").ok());
  ASSERT_TRUE(client.CreateAddrPrefix("/job/kv", {}).ok());
  auto kv = client.OpenKv("/job/kv");
  ASSERT_TRUE(kv.ok());
  obs::Tracer::Global()->Clear();
  ASSERT_TRUE((*kv)->Put("k", std::string(1024, 'v')).ok());

  const auto events = obs::Tracer::Global()->Collect();
  const auto put = EventsNamed(events, "kv.put");
  ASSERT_EQ(put.size(), 1u);
  const auto report = obs::Tracer::Global()->CriticalPath(put[0].trace_id);
  EXPECT_EQ(report.trace_id, put[0].trace_id);
  EXPECT_GE(report.span_count, 3u);  // Client + transport + block at least.
  EXPECT_GT(report.total_ns, 0);
  EXPECT_GE(report.execute_ns, 0);
  EXPECT_GE(report.transport_ns, 0);
  EXPECT_GE(report.lock_ns, 0);
  // Self-times over the whole trace can exceed the root's wall time only
  // when background spans join the trace; none ran here.
  EXPECT_LE(report.queue_ns + report.transport_ns + report.lock_ns +
                report.execute_ns,
            report.total_ns + 1);
  EXPECT_FALSE(report.ToString().empty());
  // An unknown trace folds to an empty report, not a crash.
  EXPECT_EQ(obs::Tracer::Global()->CriticalPath(~0ull - 1).span_count, 0u);
}

}  // namespace
}  // namespace jiffy
