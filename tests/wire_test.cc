// Socket integration tests for the real-wire data plane (DESIGN.md §12):
// epoll server + async tagged client on an ephemeral loopback port, deep
// pipelining under server-side response reordering, the WireGateway over a
// live cluster (zero-copy MultiGet serialization, CopyMeter-verified),
// frame-layer fault injection masked by the retry layer, and the Pipeline
// rewrite's out-of-order per-item statuses.

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "src/block/arena.h"
#include "src/block/block.h"
#include "src/block/block_id.h"
#include "src/client/jiffy_client.h"
#include "src/client/pipeline.h"
#include "src/ds/kv_content.h"
#include "src/net/tcp_client.h"
#include "src/net/tcp_server.h"
#include "src/wire/gateway.h"
#include "src/wire/wire_kv_client.h"

namespace jiffy {
namespace {

// --- Raw server + async client ----------------------------------------------

// Echo handler: answers a kMultiGet of keys with "echo:<key>" per item. The
// payload is owned via keepalive — exactly the contract arena-pinned block
// responses rely on.
WireResponse EchoHandler(const DecodedRequest& req) {
  ResponseBuilder builder(req.op, req.tag, req.keys.size());
  if (req.op == WireOp::kPing) {
    return std::move(builder).Finish();
  }
  auto owned = std::make_shared<std::vector<std::string>>();
  owned->reserve(req.keys.size());
  for (std::string_view key : req.keys) {
    owned->push_back("echo:" + std::string(key));
  }
  for (const std::string& value : *owned) {
    builder.AddItem(StatusCode::kOk, value);
  }
  builder.AddKeepalive(std::move(owned));
  return std::move(builder).Finish();
}

TEST(WireServer, PingRoundTripOnEphemeralPort) {
  TcpServer::Options opts;
  TcpServer server(EchoHandler, opts);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_NE(server.port(), 0);

  auto conn = TcpConnection::Connect("127.0.0.1", server.port(), {});
  ASSERT_TRUE(conn.ok());
  const uint64_t tag = (*conn)->BeginTag();
  std::string frame;
  EncodePingRequest(tag, &frame);
  WireReply reply = (*conn)->Call(std::move(frame), tag);
  EXPECT_TRUE(reply.transport.ok()) << reply.transport.ToString();
  EXPECT_EQ(reply.overall, StatusCode::kOk);
  EXPECT_EQ(reply.op, WireOp::kPing);
  server.Stop();
}

TEST(WireServer, ConnectionRefusedSurfacesAsError) {
  TcpServer::Options opts;
  TcpServer server(EchoHandler, opts);
  ASSERT_TRUE(server.Start().ok());
  const uint16_t port = server.port();
  server.Stop();
  auto conn = TcpConnection::Connect("127.0.0.1", port, {});
  EXPECT_FALSE(conn.ok());
}

// ≥32 RPCs genuinely in flight on one connection, completed OUT OF ORDER by
// the server's reorder hook, every response matched back to its request by
// tag (the distinct echo payload proves no crosstalk).
TEST(WireServer, DeepPipelineSurvivesServerReordering) {
  TcpServer::Options sopts;
  sopts.threads = 2;
  sopts.reorder_window = 16;  // Server shuffles up to 16 held responses.
  sopts.reorder_seed = 7;
  TcpServer server(EchoHandler, sopts);
  ASSERT_TRUE(server.Start().ok());

  TcpConnection::Options copts;
  copts.max_in_flight = 64;
  auto conn = TcpConnection::Connect("127.0.0.1", server.port(), copts);
  ASSERT_TRUE(conn.ok());

  constexpr int kRpcs = 256;
  std::mutex mu;
  std::condition_variable cv;
  int done = 0;
  int mismatches = 0;
  for (int i = 0; i < kRpcs; ++i) {
    const std::string key = "key-" + std::to_string(i);
    const uint64_t tag = (*conn)->BeginTag();
    std::string frame;
    EncodeKeysRequest(WireOp::kMultiGet, tag, 1, {key}, &frame);
    (*conn)->Submit(std::move(frame), tag,
                    [&, expect = "echo:" + key](WireReply reply) {
                      std::lock_guard<std::mutex> lock(mu);
                      if (!reply.transport.ok() || reply.values.size() != 1 ||
                          reply.values[0] != expect) {
                        ++mismatches;
                      }
                      ++done;
                      cv.notify_all();
                    });
  }
  {
    std::unique_lock<std::mutex> lock(mu);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(30),
                            [&] { return done == kRpcs; }));
  }
  EXPECT_EQ(mismatches, 0);
  // The window bound is 64; with 256 submissions the pipeline must have
  // actually run deep, not degenerated to stop-and-wait.
  EXPECT_GE((*conn)->max_in_flight_seen(), 32u);
  server.Stop();
}

TEST(WireServer, ConcurrentConnectionsServeIndependently) {
  TcpServer::Options sopts;
  sopts.threads = 3;
  TcpServer server(EchoHandler, sopts);
  ASSERT_TRUE(server.Start().ok());

  constexpr int kClients = 4;
  constexpr int kPerClient = 64;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      auto conn = TcpConnection::Connect("127.0.0.1", server.port(), {});
      if (!conn.ok()) {
        failures.fetch_add(kPerClient);
        return;
      }
      for (int i = 0; i < kPerClient; ++i) {
        const std::string key =
            "c" + std::to_string(c) + "-" + std::to_string(i);
        const uint64_t tag = (*conn)->BeginTag();
        std::string frame;
        EncodeKeysRequest(WireOp::kMultiGet, tag, 1, {key}, &frame);
        WireReply reply = (*conn)->Call(std::move(frame), tag);
        if (!reply.transport.ok() || reply.values.size() != 1 ||
            reply.values[0] != "echo:" + key) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  EXPECT_EQ(failures.load(), 0);
  server.Stop();
}

// --- WireMap routing ---------------------------------------------------------

TEST(WireMapTest, EvenPartitionCoversSlotSpace) {
  WireMap map = WireMap::Even({{"127.0.0.1", 1000, 0}, {"127.0.0.1", 1001, 1}},
                              1024, {10, 20, 30});
  ASSERT_EQ(map.ranges.size(), 3u);
  EXPECT_EQ(map.ranges.front().slot_lo, 0u);
  EXPECT_EQ(map.ranges.back().slot_hi, 1024u);
  for (uint32_t slot = 0; slot < 1024; ++slot) {
    ASSERT_NE(map.Route(slot), static_cast<size_t>(-1)) << slot;
  }
  EXPECT_EQ(map.Route(1024), static_cast<size_t>(-1));
  // Blocks alternate endpoints.
  EXPECT_EQ(map.ranges[0].endpoint, 0u);
  EXPECT_EQ(map.ranges[1].endpoint, 1u);
  EXPECT_EQ(map.ranges[2].endpoint, 0u);
}

// --- Gateway over a live cluster --------------------------------------------

class WireGatewayTest : public ::testing::Test {
 protected:
  WireGatewayTest() {
    JiffyCluster::Options opts;
    opts.config.num_memory_servers = 2;
    opts.config.blocks_per_server = 16;
    opts.config.block_size_bytes = 1 << 20;
    opts.config.lease_duration = 3600 * kSecond;
    cluster_ = std::make_unique<JiffyCluster>(opts);
    client_ = std::make_unique<JiffyClient>(cluster_.get());
    EXPECT_TRUE(client_->RegisterJob("job").ok());
    EXPECT_TRUE(client_->CreateAddrPrefix("/job/kv", {}).ok());
    auto kv = client_->OpenKv("/job/kv");
    EXPECT_TRUE(kv.ok());
    kv_ = std::move(*kv);

    gateway_ = std::make_unique<WireGateway>(cluster_.get());
    EXPECT_TRUE(gateway_->Start().ok());
  }

  ~WireGatewayTest() override { gateway_->Stop(); }

  WireKvClient WireClient(WireKvClient::Options options = {}) {
    if (!options.map_refresher) {
      options.map_refresher = [this]() -> Result<WireMap> {
        return gateway_->MapFor(kv_->CachedMap());
      };
    }
    return WireKvClient(gateway_->MapFor(kv_->CachedMap()),
                        std::move(options));
  }

  std::unique_ptr<JiffyCluster> cluster_;
  std::unique_ptr<JiffyClient> client_;
  std::unique_ptr<KvClient> kv_;
  std::unique_ptr<WireGateway> gateway_;
};

TEST_F(WireGatewayTest, PutGetDeleteOverTheWire) {
  WireKvClient wire = WireClient();
  ASSERT_TRUE(wire.Put("wire-key", "wire-value").ok());
  auto got = wire.Get("wire-key");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, "wire-value");
  EXPECT_TRUE(wire.Delete("wire-key").ok());
  EXPECT_EQ(wire.Get("wire-key").status().code(), StatusCode::kNotFound);
  EXPECT_TRUE(wire.Ping(0).ok());
}

// The gateway serves the SAME blocks the in-process client mutates: data is
// visible across both paths without any copy or sync step.
TEST_F(WireGatewayTest, WireAndInProcessSeeTheSameBlocks) {
  ASSERT_TRUE(kv_->Put("from-inproc", "alpha").ok());
  WireKvClient wire = WireClient();
  auto over_wire = wire.Get("from-inproc");
  ASSERT_TRUE(over_wire.ok());
  EXPECT_EQ(*over_wire, "alpha");

  ASSERT_TRUE(wire.Put("from-wire", "beta").ok());
  auto in_proc = kv_->Get("from-wire");
  ASSERT_TRUE(in_proc.ok());
  EXPECT_EQ(*in_proc, "beta");
}

TEST_F(WireGatewayTest, BatchedOpsAlignIndexForIndex) {
  WireKvClient wire = WireClient();
  std::vector<std::string> keys, values;
  for (int i = 0; i < 64; ++i) {
    keys.push_back("batch-" + std::to_string(i));
    values.push_back("value-" + std::to_string(i * 3));
  }
  std::vector<std::pair<std::string_view, std::string_view>> pairs;
  std::vector<std::string_view> key_views;
  for (int i = 0; i < 64; ++i) {
    pairs.emplace_back(keys[i], values[i]);
    key_views.emplace_back(keys[i]);
  }
  for (const Status& st : wire.MultiPut(pairs)) {
    ASSERT_TRUE(st.ok()) << st.ToString();
  }

  // Mix hits and misses; results must align with the request order.
  std::vector<std::string_view> lookup = key_views;
  lookup.insert(lookup.begin() + 10, "no-such-key");
  WireValues got = wire.MultiGet(lookup);
  ASSERT_EQ(got.size(), 65u);
  EXPECT_EQ(got[10].status().code(), StatusCode::kNotFound);
  for (size_t i = 0; i < lookup.size(); ++i) {
    if (i == 10) {
      continue;
    }
    const size_t k = i < 10 ? i : i - 1;
    ASSERT_TRUE(got[i].ok()) << "item " << i;
    EXPECT_EQ(*got[i], values[k]);
  }

  std::vector<Status> deleted = wire.MultiDelete(key_views);
  for (const Status& st : deleted) {
    EXPECT_TRUE(st.ok());
  }
  EXPECT_EQ(wire.Get(keys[0]).status().code(), StatusCode::kNotFound);
}

// Acceptance: server-side MultiGet serialization copies ZERO payload bytes.
// The response frame is scatter-gathered straight out of pinned arena
// memory; the only copy in the whole exchange is the client re-anchoring
// the response body (unmetered — CopyMeter counts process-wide payload
// copies, which this test requires to stay flat).
TEST_F(WireGatewayTest, MultiGetServesWithZeroPayloadCopies) {
  std::vector<std::pair<std::string_view, std::string_view>> pairs;
  std::vector<std::string> keys, values;
  for (int i = 0; i < 32; ++i) {
    keys.push_back("zc-" + std::to_string(i));
    values.push_back(std::string(256, static_cast<char>('a' + i % 26)));
  }
  for (int i = 0; i < 32; ++i) {
    pairs.emplace_back(keys[i], values[i]);
  }
  WireKvClient wire = WireClient();
  for (const Status& st : wire.MultiPut(pairs)) {
    ASSERT_TRUE(st.ok());
  }

  std::vector<std::string_view> key_views(keys.begin(), keys.end());
  const uint64_t copied_before = CopyMeter::Total();
  WireValues got = wire.MultiGet(key_views);
  const uint64_t copied_after = CopyMeter::Total();
  for (size_t i = 0; i < key_views.size(); ++i) {
    ASSERT_TRUE(got[i].ok());
    EXPECT_EQ(*got[i], values[i]);
  }
  EXPECT_EQ(copied_after - copied_before, 0u)
      << "wire MultiGet serialization must not materialize values";
}

TEST_F(WireGatewayTest, StaleMapRefreshesAndReroutes) {
  // Start from an EMPTY routing snapshot: every item is unrouted, forcing a
  // refresh through the installed refresher.
  ASSERT_TRUE(kv_->Put("stale-key", "stale-value").ok());
  WireKvClient::Options options;
  options.map_refresher = [this]() -> Result<WireMap> {
    return gateway_->MapFor(kv_->CachedMap());
  };
  WireMap empty;
  empty.total_slots = cluster_->config().kv_hash_slots;
  WireKvClient wire(std::move(empty), std::move(options));
  auto got = wire.Get("stale-key");
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(*got, "stale-value");

  // Without a refresher the same situation fails with kStaleMetadata.
  WireMap empty2;
  empty2.total_slots = cluster_->config().kv_hash_slots;
  WireKvClient no_refresh(std::move(empty2));
  EXPECT_EQ(no_refresh.Get("stale-key").status().code(),
            StatusCode::kStaleMetadata);
}

TEST_F(WireGatewayTest, ConcurrentWireClients) {
  constexpr int kThreads = 4;
  constexpr int kOps = 48;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      WireKvClient wire = WireClient();
      for (int i = 0; i < kOps; ++i) {
        const std::string key =
            "t" + std::to_string(t) + "-" + std::to_string(i);
        const std::string value = "v" + std::to_string(t * 1000 + i);
        if (!wire.Put(key, value).ok()) {
          failures.fetch_add(1);
          continue;
        }
        auto got = wire.Get(key);
        if (!got.ok() || *got != value) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& th : threads) {
    th.join();
  }
  EXPECT_EQ(failures.load(), 0);
}

// --- Frame-layer fault injection --------------------------------------------

TEST_F(WireGatewayTest, RetriesMaskInjectedDrops) {
  WireKvClient::Options options;
  options.faults.drop_prob = 0.4;
  options.faults.seed = 11;
  options.faults_on = true;
  // Keep injected-drop "timeouts" instant: the verdict is synthesized at
  // the frame layer, no real timer needs to expire.
  options.faults.drop_timeout = 0;
  WireKvClient wire = WireClient(std::move(options));

  std::vector<std::string> keys, values;
  for (int i = 0; i < 24; ++i) {
    keys.push_back("drop-" + std::to_string(i));
    values.push_back("v" + std::to_string(i));
  }
  for (int i = 0; i < 24; ++i) {
    ASSERT_TRUE(wire.Put(keys[i], values[i]).ok()) << i;
  }
  for (int i = 0; i < 24; ++i) {
    auto got = wire.Get(keys[i]);
    ASSERT_TRUE(got.ok()) << i;
    EXPECT_EQ(*got, values[i]);
  }
  // With drop_prob 0.4 over 48 exchanges, some retries must have fired.
  EXPECT_GT(wire.retries(), 0u);
}

TEST_F(WireGatewayTest, InjectedDelaysStallButSucceed) {
  WireKvClient::Options options;
  options.faults.delay_prob = 1.0;
  options.faults.extra_delay = 2 * kMillisecond;
  options.faults.seed = 5;
  options.faults_on = true;
  WireKvClient wire = WireClient(std::move(options));

  ASSERT_TRUE(wire.Put("delayed", "ok").ok());
  auto got = wire.Get("delayed");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, "ok");

  const WireEndpoint& ep = wire.map().endpoints[0];
  auto conn = wire.pool()->Get(ep.host, ep.port, ep.server_id);
  ASSERT_TRUE(conn.ok());
  EXPECT_GT((*conn)->fault_delays(), 0u);
}

TEST_F(WireGatewayTest, OutageWindowFailsFast) {
  WireKvClient::Options options;
  FaultPlan::Outage outage;
  outage.endpoint = 0;  // The gateway endpoint's server id.
  outage.from = 0;
  outage.until = std::numeric_limits<TimeNs>::max();
  options.faults.outages.push_back(outage);
  options.faults_on = true;
  options.retry.max_attempts = 2;
  options.retry.initial_backoff = 10 * kMicrosecond;
  WireKvClient wire = WireClient(std::move(options));

  const Status st = wire.Put("during-outage", "x");
  EXPECT_EQ(st.code(), StatusCode::kUnavailable) << st.ToString();
  EXPECT_GT(wire.retries(), 0u);

  auto conn = wire.pool()->Get(wire.map().endpoints[0].host,
                               wire.map().endpoints[0].port, 0);
  ASSERT_TRUE(conn.ok());
  EXPECT_GT((*conn)->fault_outages(), 0u);
}

// --- Thread-per-core affinity (DESIGN.md §13) --------------------------------

// With affinity on, every block executes on exactly ONE loop thread — frames
// arriving on other loops are forwarded through the MPSC rings. The handler
// records which thread executed each block; blocks are picked so their
// OwnerLoop spans all four loops, proving both routing and forwarding.
TEST(WireServer, AffinityExecutesEachBlockOnItsOwningLoop) {
  constexpr size_t kLoops = 4;
  TcpServer::Options sopts;
  sopts.threads = static_cast<int>(kLoops);
  sopts.affinity = true;
  std::mutex mu;
  std::map<uint64_t, std::set<std::thread::id>> executors;
  int non_affine = 0;
  TcpServer server(
      TcpServer::ExecHandler(
          [&](const DecodedRequest& req, const ExecContext& ctx) {
            {
              std::lock_guard<std::mutex> lock(mu);
              executors[req.block].insert(std::this_thread::get_id());
              if (!ctx.affine) {
                ++non_affine;
              }
            }
            return EchoHandler(req);
          }),
      sopts);
  ASSERT_TRUE(server.Start().ok());

  // One packed block per owning loop, found via the public hash.
  std::vector<uint64_t> blocks(kLoops, 0);
  size_t found = 0;
  for (uint64_t b = 1; found < kLoops; ++b) {
    const size_t owner = TcpServer::OwnerLoop(b, kLoops);
    if (blocks[owner] == 0) {
      blocks[owner] = b;
      ++found;
    }
  }

  auto conn = TcpConnection::Connect("127.0.0.1", server.port(), {});
  ASSERT_TRUE(conn.ok());
  for (int round = 0; round < 8; ++round) {
    for (uint64_t block : blocks) {
      const std::string key = "k" + std::to_string(round);
      const uint64_t tag = (*conn)->BeginTag();
      std::string frame;
      EncodeKeysRequest(WireOp::kMultiGet, tag, block, {key}, &frame);
      WireReply reply = (*conn)->Call(std::move(frame), tag);
      ASSERT_TRUE(reply.transport.ok());
      ASSERT_EQ(reply.values.size(), 1u);
      EXPECT_EQ(reply.values[0], "echo:" + key);
    }
  }

  std::set<std::thread::id> distinct;
  {
    std::lock_guard<std::mutex> lock(mu);
    ASSERT_EQ(executors.size(), kLoops);
    for (const auto& [block, threads] : executors) {
      EXPECT_EQ(threads.size(), 1u)
          << "block " << block << " executed on multiple loops";
      distinct.insert(*threads.begin());
    }
    EXPECT_EQ(non_affine, 0);
  }
  // Four blocks owned by four different loops must run on four threads, and
  // the three not owned by the connection's home loop were forwarded.
  EXPECT_EQ(distinct.size(), kLoops);
  EXPECT_GT(server.frames_forwarded(), 0u);
  server.Stop();
}

class WireAffinityTest : public WireGatewayTest {
 protected:
  WireAffinityTest() {
    gateway_->Stop();
    WireGateway::Options gopts;
    gopts.threads = 4;
    gopts.affinity = true;
    gateway_ = std::make_unique<WireGateway>(cluster_.get(), gopts);
    EXPECT_TRUE(gateway_->Start().ok());
  }

  uint64_t SumOverBlocks(const WireMap& map,
                         uint64_t (Block::*counter)() const) {
    uint64_t total = 0;
    std::set<uint64_t> seen;
    for (const WireRange& r : map.ranges) {
      if (!seen.insert(r.block).second) {
        continue;
      }
      Block* block = cluster_->ResolveBlock(BlockId::FromPacked(r.block));
      if (block != nullptr) {
        total += (block->*counter)();
      }
    }
    return total;
  }
};

// Batched put/get/delete parity under affinity: results identical to shared
// mode, frames for non-home blocks forwarded, and repeat touches engage the
// lock-free single-writer path (biased_ops advances).
TEST_F(WireAffinityTest, BatchedOpsForwardAndRunSingleWriter) {
  WireKvClient wire = WireClient();
  std::vector<std::string> keys, values;
  for (int i = 0; i < 64; ++i) {
    keys.push_back("aff-" + std::to_string(i));
    values.push_back("value-" + std::to_string(i * 7));
  }
  std::vector<std::pair<std::string_view, std::string_view>> pairs;
  std::vector<std::string_view> key_views;
  for (int i = 0; i < 64; ++i) {
    pairs.emplace_back(keys[i], values[i]);
    key_views.emplace_back(keys[i]);
  }
  // Two rounds: the first grants each touched block's bias to its owning
  // loop (inside the shared fallback), the second runs on the granted bias.
  for (int round = 0; round < 2; ++round) {
    for (const Status& st : wire.MultiPut(pairs)) {
      ASSERT_TRUE(st.ok()) << st.ToString();
    }
    WireValues got = wire.MultiGet(key_views);
    ASSERT_EQ(got.size(), 64u);
    for (size_t i = 0; i < got.size(); ++i) {
      ASSERT_TRUE(got[i].ok()) << "item " << i;
      EXPECT_EQ(*got[i], values[i]);
    }
  }
  std::vector<Status> deleted = wire.MultiDelete(key_views);
  for (const Status& st : deleted) {
    EXPECT_TRUE(st.ok());
  }
  EXPECT_EQ(wire.Get(keys[0]).status().code(), StatusCode::kNotFound);

  EXPECT_GT(gateway_->server()->frames_forwarded(), 0u);
  EXPECT_GT(SumOverBlocks(wire.map(), &Block::biased_ops), 0u);
}

// The zero-copy acceptance bar holds on the affine path too: single-writer
// execution still serves MultiGet straight out of pinned arena memory.
TEST_F(WireAffinityTest, MultiGetStaysZeroCopyUnderAffinity) {
  std::vector<std::string> keys, values;
  std::vector<std::pair<std::string_view, std::string_view>> pairs;
  for (int i = 0; i < 32; ++i) {
    keys.push_back("affzc-" + std::to_string(i));
    values.push_back(std::string(256, static_cast<char>('a' + i % 26)));
  }
  for (int i = 0; i < 32; ++i) {
    pairs.emplace_back(keys[i], values[i]);
  }
  WireKvClient wire = WireClient();
  for (const Status& st : wire.MultiPut(pairs)) {
    ASSERT_TRUE(st.ok());
  }
  std::vector<std::string_view> key_views(keys.begin(), keys.end());
  // Two rounds so the second MultiGet definitely runs on the biased fast
  // path — both must stay at zero payload copies.
  const uint64_t copied_before = CopyMeter::Total();
  for (int round = 0; round < 2; ++round) {
    WireValues got = wire.MultiGet(key_views);
    for (size_t i = 0; i < key_views.size(); ++i) {
      ASSERT_TRUE(got[i].ok());
      EXPECT_EQ(*got[i], values[i]);
    }
  }
  EXPECT_EQ(CopyMeter::Total() - copied_before, 0u)
      << "affine MultiGet serialization must not materialize values";
}

// In-process clients keep working while wire loops hold biases: each OpLock
// revokes the bias (Dekker handshake), then the next affine op re-grants it.
// Data stays coherent across both paths and revocations are observed.
TEST_F(WireAffinityTest, InProcessAccessRevokesAndRegrantsBias) {
  WireKvClient wire = WireClient();
  for (int i = 0; i < 32; ++i) {
    const std::string key = "mix-" + std::to_string(i);
    // Wire put (grants/uses bias) → in-process read (revokes) → in-process
    // put (shared mode) → wire read (re-grants).
    ASSERT_TRUE(wire.Put(key, "from-wire").ok());
    auto in_proc = kv_->Get(key);
    ASSERT_TRUE(in_proc.ok());
    EXPECT_EQ(*in_proc, "from-wire");
    ASSERT_TRUE(kv_->Put(key, "from-inproc").ok());
    auto over_wire = wire.Get(key);
    ASSERT_TRUE(over_wire.ok());
    EXPECT_EQ(*over_wire, "from-inproc");
  }
  EXPECT_GT(SumOverBlocks(wire.map(), &Block::biased_ops), 0u);
  EXPECT_GT(SumOverBlocks(wire.map(), &Block::bias_revokes), 0u);
}

// --- Affinity under repartition churn ----------------------------------------

// Satellite 3: wire writers drive chunked splits while the affinity server
// executes single-writer; stale routes refresh and re-route, and the final
// state is exactly-once. Suite name contains "Wire" for the TSan CI job.
TEST(WireAffinityChurnTest, SplitsUnderWireWritersKeepExactlyOnce) {
  JiffyCluster::Options opts;
  opts.config.num_memory_servers = 4;
  opts.config.blocks_per_server = 256;
  opts.config.block_size_bytes = 4096;
  opts.config.repartition_chunk_bytes = 512;
  opts.config.lease_duration = 3600 * kSecond;
  auto cluster = std::make_unique<JiffyCluster>(opts);
  JiffyClient client(cluster.get());
  ASSERT_TRUE(client.RegisterJob("job").ok());
  ASSERT_TRUE(client.CreateAddrPrefix("/job/kv", {}).ok());

  WireGateway::Options gopts;
  gopts.threads = 4;
  gopts.affinity = true;
  WireGateway gateway(cluster.get(), gopts);
  ASSERT_TRUE(gateway.Start().ok());

  constexpr int kWriters = 4;
  constexpr int kKeysPerWriter = 250;
  constexpr int kBatch = 25;
  auto key_of = [](int w, int i) {
    return "w" + std::to_string(w) + "-" + std::to_string(i);
  };
  auto value_of = [](int w, int i) {
    return "v" + std::to_string(w) + ":" + std::to_string(i) +
           std::string(48, 'd');
  };
  // ~60 KiB of pairs into 4 KiB blocks with 512-byte migration chunks: the
  // repartitioner splits blocks — moving them to NEW BlockIds owned by
  // different loops — while these writers' batches are in flight.
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      auto kv = client.OpenKv("/job/kv");
      ASSERT_TRUE(kv.ok());
      WireKvClient::Options wopts;
      wopts.map_refresher = [&gateway,
                             kvp = kv->get()]() -> Result<WireMap> {
        JIFFY_RETURN_IF_ERROR(kvp->RefreshMap());
        return gateway.MapFor(kvp->CachedMap());
      };
      WireKvClient wire(gateway.MapFor((*kv)->CachedMap()), std::move(wopts));
      std::vector<std::string> keys(kBatch), values(kBatch);
      for (int base = 0; base < kKeysPerWriter; base += kBatch) {
        std::vector<std::pair<std::string_view, std::string_view>> pairs;
        for (int j = 0; j < kBatch; ++j) {
          keys[j] = key_of(w, base + j);
          values[j] = value_of(w, base + j);
          pairs.emplace_back(keys[j], values[j]);
        }
        const std::vector<Status> statuses = wire.MultiPut(pairs);
        ASSERT_EQ(statuses.size(), pairs.size());
        for (size_t j = 0; j < statuses.size(); ++j) {
          ASSERT_TRUE(statuses[j].ok())
              << keys[j] << ": " << statuses[j].ToString();
        }
      }
    });
  }
  for (std::thread& t : writers) {
    t.join();
  }
  ASSERT_NE(cluster->repartitioner(), nullptr);
  cluster->repartitioner()->WaitIdle();
  EXPECT_GT(cluster->repartitioner()->splits(), 0u);
  EXPECT_GT(gateway.server()->frames_forwarded(), 0u);

  // Exactly-once: no pair lost (per-key read-back) and none duplicated
  // (CountPairs over the post-split map is exact).
  auto kv = client.OpenKv("/job/kv");
  ASSERT_TRUE(kv.ok());
  ASSERT_TRUE((*kv)->RefreshMap().ok());
  EXPECT_GT((*kv)->CachedMap().entries.size(), 1u);
  EXPECT_EQ(*(*kv)->CountPairs(),
            static_cast<size_t>(kWriters) * kKeysPerWriter);

  // Read everything back OVER THE WIRE through the post-churn map.
  WireKvClient::Options ropts;
  ropts.map_refresher = [&gateway, kvp = kv->get()]() -> Result<WireMap> {
    JIFFY_RETURN_IF_ERROR(kvp->RefreshMap());
    return gateway.MapFor(kvp->CachedMap());
  };
  WireKvClient reader(gateway.MapFor((*kv)->CachedMap()), std::move(ropts));
  for (int w = 0; w < kWriters; ++w) {
    std::vector<std::string> keys;
    std::vector<std::string_view> views;
    for (int i = 0; i < kKeysPerWriter; ++i) {
      keys.push_back(key_of(w, i));
    }
    for (const std::string& k : keys) {
      views.emplace_back(k);
    }
    WireValues got = reader.MultiGet(views);
    ASSERT_EQ(got.size(), keys.size());
    for (int i = 0; i < kKeysPerWriter; ++i) {
      ASSERT_TRUE(got[i].ok()) << keys[i] << ": " << got[i].status();
      EXPECT_EQ(*got[i], value_of(w, i)) << keys[i];
    }
  }

  // Phase 2: in-process thinning (deletes raise underload pressure, driving
  // merges that move slot ranges to surviving blocks — i.e. to DIFFERENT
  // owning loops) while a wire reader keeps hitting survivor keys. Stale
  // routes must refresh and re-route mid-migration.
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> wire_reads{0};
  std::thread wire_reader([&] {
    auto rkv = client.OpenKv("/job/kv");
    ASSERT_TRUE(rkv.ok());
    WireKvClient::Options o2;
    o2.map_refresher = [&gateway, kvp = rkv->get()]() -> Result<WireMap> {
      JIFFY_RETURN_IF_ERROR(kvp->RefreshMap());
      return gateway.MapFor(kvp->CachedMap());
    };
    ASSERT_TRUE((*rkv)->RefreshMap().ok());
    WireKvClient r2(gateway.MapFor((*rkv)->CachedMap()), std::move(o2));
    for (uint64_t i = 0; !stop.load(std::memory_order_acquire); ++i) {
      const int w = static_cast<int>(i % kWriters);
      const int k =
          static_cast<int>((i * 10) % kKeysPerWriter) / 10 * 10;  // Survivor.
      auto got = r2.Get(key_of(w, k));
      ASSERT_TRUE(got.ok()) << key_of(w, k) << ": " << got.status();
      ASSERT_EQ(*got, value_of(w, k));
      wire_reads.fetch_add(1);
    }
  });
  for (int w = 0; w < kWriters; ++w) {
    for (int i = 0; i < kKeysPerWriter; ++i) {
      if (i % 10 == 0) {
        continue;  // Survivors the wire reader is verifying.
      }
      ASSERT_TRUE((*kv)->Delete(key_of(w, i)).ok()) << key_of(w, i);
    }
  }
  cluster->repartitioner()->WaitIdle();
  stop.store(true, std::memory_order_release);
  wire_reader.join();
  EXPECT_GT(wire_reads.load(), 0u);

  const size_t survivors =
      static_cast<size_t>(kWriters) * ((kKeysPerWriter + 9) / 10);
  ASSERT_TRUE((*kv)->RefreshMap().ok());
  EXPECT_EQ(*(*kv)->CountPairs(), survivors);
  gateway.Stop();
}

// --- Client-side adaptive coalescing -----------------------------------------

// With the threshold at 1 every submission rides the buffered path; frames
// batch into strictly fewer (or equal) writes and every reply still matches
// its tag.
TEST(WireCoalescing, BusyPipeBatchesFramesIntoFewerWrites) {
  TcpServer::Options sopts;
  sopts.threads = 2;
  TcpServer server(EchoHandler, sopts);
  ASSERT_TRUE(server.Start().ok());

  TcpConnection::Options copts;
  copts.max_in_flight = 64;
  copts.coalesce_min_inflight = 1;  // Always considered busy.
  copts.coalesce_window_us = 200;
  auto conn = TcpConnection::Connect("127.0.0.1", server.port(), copts);
  ASSERT_TRUE(conn.ok());

  constexpr int kRpcs = 128;
  std::mutex mu;
  std::condition_variable cv;
  int done = 0;
  int mismatches = 0;
  for (int i = 0; i < kRpcs; ++i) {
    const std::string key = "co-" + std::to_string(i);
    const uint64_t tag = (*conn)->BeginTag();
    std::string frame;
    EncodeKeysRequest(WireOp::kMultiGet, tag, 1, {key}, &frame);
    (*conn)->Submit(std::move(frame), tag,
                    [&, expect = "echo:" + key](WireReply reply) {
                      std::lock_guard<std::mutex> lock(mu);
                      if (!reply.transport.ok() || reply.values.size() != 1 ||
                          reply.values[0] != expect) {
                        ++mismatches;
                      }
                      ++done;
                      cv.notify_all();
                    });
  }
  {
    std::unique_lock<std::mutex> lock(mu);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(30),
                            [&] { return done == kRpcs; }));
  }
  EXPECT_EQ(mismatches, 0);
  EXPECT_EQ((*conn)->coalesced_frames(), static_cast<uint64_t>(kRpcs));
  EXPECT_GE((*conn)->coalesced_flushes(), 1u);
  EXPECT_LE((*conn)->coalesced_flushes(), (*conn)->coalesced_frames());
  server.Stop();
}

// Below the in-flight threshold the adaptive path never buffers: sequential
// round trips write immediately, exactly the PR-8 latency behavior.
TEST(WireCoalescing, IdlePipeWritesImmediately) {
  TcpServer::Options sopts;
  TcpServer server(EchoHandler, sopts);
  ASSERT_TRUE(server.Start().ok());

  TcpConnection::Options copts;
  copts.coalesce_min_inflight = 64;  // Sequential calls never reach this.
  auto conn = TcpConnection::Connect("127.0.0.1", server.port(), copts);
  ASSERT_TRUE(conn.ok());
  for (int i = 0; i < 8; ++i) {
    const std::string key = "seq-" + std::to_string(i);
    const uint64_t tag = (*conn)->BeginTag();
    std::string frame;
    EncodeKeysRequest(WireOp::kMultiGet, tag, 1, {key}, &frame);
    WireReply reply = (*conn)->Call(std::move(frame), tag);
    ASSERT_TRUE(reply.transport.ok());
    ASSERT_EQ(reply.values.size(), 1u);
    EXPECT_EQ(reply.values[0], "echo:" + key);
  }
  EXPECT_EQ((*conn)->coalesced_frames(), 0u);
  server.Stop();
}

// --- Pipeline over the completion window -------------------------------------

TEST(WirePipeline, PropagatesPerItemStatusesFromOutOfOrderCompletions) {
  Pipeline pipeline(8);
  std::vector<uint64_t> fail_tags;
  // Mixed durations force completions out of submission order; failures sit
  // at submissions 3, 7, 11.
  for (int i = 0; i < 16; ++i) {
    const bool fail = i % 4 == 3;
    const int sleep_us = (16 - i) * 500;  // Later submissions finish first.
    const uint64_t tag = pipeline.Submit([fail, sleep_us, i]() -> Status {
      std::this_thread::sleep_for(std::chrono::microseconds(sleep_us));
      if (fail) {
        return Unavailable("op " + std::to_string(i) + " failed");
      }
      return Status::Ok();
    });
    if (fail) {
      fail_tags.push_back(tag);
    }
  }
  const Status first = pipeline.Flush();
  EXPECT_EQ(first.code(), StatusCode::kUnavailable);
  // Flush reports the EARLIEST failed submission, not the first to finish
  // (reverse sleeps make late failures land first).
  EXPECT_NE(first.message().find("op 3"), std::string::npos)
      << first.ToString();
  EXPECT_GE(pipeline.max_in_flight(), 4u);
}

TEST(WirePipeline, TakeErrorsListsEveryFailureInSubmissionOrder) {
  Pipeline pipeline(4);
  std::vector<uint64_t> fail_tags;
  for (int i = 0; i < 12; ++i) {
    const bool fail = i % 3 == 1;
    const uint64_t tag = pipeline.Submit([fail, i]() -> Status {
      // Reverse-ish sleeps scramble completion order.
      std::this_thread::sleep_for(std::chrono::microseconds((12 - i) * 200));
      return fail ? Timeout("op " + std::to_string(i)) : Status::Ok();
    });
    if (fail) {
      fail_tags.push_back(tag);
    }
  }
  ASSERT_EQ(pipeline.Flush().code(), StatusCode::kTimeout);

  // Per-item resolution after the drain: every failure, submission order.
  std::vector<TaggedStatus> errors = pipeline.TakeErrors();
  ASSERT_EQ(errors.size(), fail_tags.size());
  for (size_t i = 0; i < errors.size(); ++i) {
    EXPECT_EQ(errors[i].tag, fail_tags[i]);
    EXPECT_EQ(errors[i].status.code(), StatusCode::kTimeout);
  }

  // TakeErrors consumed the set: a fresh epoch reports clean.
  EXPECT_TRUE(pipeline.Submit([] { return Status::Ok(); }) > 0);
  EXPECT_TRUE(pipeline.Flush().ok());
  EXPECT_TRUE(pipeline.TakeErrors().empty());
}

}  // namespace
}  // namespace jiffy
