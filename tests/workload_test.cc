// Tests for the workload generators, including the calibration properties
// the Snowflake substitute must satisfy (DESIGN.md §1).

#include <gtest/gtest.h>

#include <algorithm>

#include "src/workload/excamera.h"
#include "src/workload/snowflake.h"
#include "src/workload/text.h"

namespace jiffy {
namespace {

SnowflakeParams SmallParams() {
  SnowflakeParams p;
  p.num_tenants = 4;
  p.window = 3600 * kSecond;
  return p;
}

TEST(SnowflakeTest, DeterministicForSeed) {
  SnowflakeTraceGen a(SmallParams(), 42), b(SmallParams(), 42);
  TenantTrace ta = a.GenerateTenant(0);
  TenantTrace tb = b.GenerateTenant(0);
  ASSERT_EQ(ta.jobs.size(), tb.jobs.size());
  for (size_t i = 0; i < ta.jobs.size(); ++i) {
    EXPECT_EQ(ta.jobs[i].submit_time, tb.jobs[i].submit_time);
    EXPECT_EQ(ta.jobs[i].TotalBytes(), tb.jobs[i].TotalBytes());
  }
}

TEST(SnowflakeTest, JobsFitWindowAndHaveStages) {
  SnowflakeTraceGen gen(SmallParams(), 7);
  for (const TenantTrace& trace : gen.GenerateAll()) {
    EXPECT_FALSE(trace.jobs.empty());
    for (const JobSpec& job : trace.jobs) {
      EXPECT_LT(job.submit_time, SmallParams().window);
      EXPECT_GE(job.stages.size(), 1u);
      EXPECT_LE(job.stages.size(), 8u);
      for (const StageSpec& s : job.stages) {
        EXPECT_GE(s.bytes, SmallParams().min_stage_bytes);
        EXPECT_LE(s.bytes, SmallParams().max_stage_bytes);
        EXPECT_GT(s.duration, 0);
      }
    }
  }
}

TEST(SnowflakeTest, LiveBytesRiseAndFall) {
  JobSpec job;
  job.submit_time = 100;
  job.stages = {{0, 10, 1000}, {10, 10, 2000}};
  // During stage 0: its output is live.
  EXPECT_EQ(job.LiveBytesAt(105), 1000u);
  // During stage 1: both stage 0's output (being consumed) and stage 1's.
  EXPECT_EQ(job.LiveBytesAt(115), 3000u);
  // After job end: nothing.
  EXPECT_EQ(job.LiveBytesAt(125), 0u);
  EXPECT_EQ(job.PeakBytes(), 3000u);
  EXPECT_EQ(job.EndTime(), 120);
}

TEST(SnowflakeTest, PeakToAverageRatioIsHigh) {
  // Fig 1(a): peak/avg demand varies by an order of magnitude or more.
  SnowflakeTraceGen gen(SmallParams(), 11);
  double max_ratio = 0.0;
  for (const TenantTrace& trace : gen.GenerateAll()) {
    auto series = SnowflakeTraceGen::DemandSeries(trace, 10 * kSecond,
                                                  SmallParams().window);
    const double mean = SnowflakeTraceGen::SeriesMean(series);
    const uint64_t peak = SnowflakeTraceGen::SeriesPeak(series);
    if (mean > 0) {
      max_ratio = std::max(max_ratio, static_cast<double>(peak) / mean);
    }
  }
  EXPECT_GT(max_ratio, 10.0);
}

TEST(SnowflakeTest, PeakProvisioningWastesMostCapacity) {
  // Fig 1(b): provisioning at peak yields well under half utilization on
  // average (the paper reports 19 % across tenants).
  SnowflakeParams p = SmallParams();
  p.num_tenants = 8;
  SnowflakeTraceGen gen(p, 23);
  double util_sum = 0.0;
  int counted = 0;
  for (const TenantTrace& trace : gen.GenerateAll()) {
    auto series = SnowflakeTraceGen::DemandSeries(trace, 10 * kSecond, p.window);
    const uint64_t peak = SnowflakeTraceGen::SeriesPeak(series);
    if (peak == 0) {
      continue;
    }
    util_sum += SnowflakeTraceGen::SeriesMean(series) /
                static_cast<double>(peak);
    counted++;
  }
  ASSERT_GT(counted, 0);
  EXPECT_LT(util_sum / counted, 0.5);
}

TEST(SnowflakeTest, StageSizesSpanOrdersOfMagnitude) {
  SnowflakeParams p = SmallParams();
  p.num_tenants = 8;
  SnowflakeTraceGen gen(p, 31);
  uint64_t smallest = UINT64_MAX, largest = 0;
  for (const TenantTrace& trace : gen.GenerateAll()) {
    for (const JobSpec& job : trace.jobs) {
      for (const StageSpec& s : job.stages) {
        smallest = std::min(smallest, s.bytes);
        largest = std::max(largest, s.bytes);
      }
    }
  }
  // ≥3 orders of magnitude spread (paper: 5 orders for TPC-DS).
  EXPECT_GT(largest / std::max<uint64_t>(smallest, 1), 1000u);
}

TEST(TextTest, SentencesHaveWordsFromVocab) {
  SentenceGenerator gen(100, 0.99, 5);
  for (int i = 0; i < 50; ++i) {
    auto words = SplitWords(gen.Sentence());
    EXPECT_GE(words.size(), 6u);
    EXPECT_LE(words.size(), 14u);
    for (const auto& w : words) {
      EXPECT_EQ(w[0], 'w');
    }
  }
}

TEST(TextTest, WordFrequencyIsSkewed) {
  SentenceGenerator gen(1000, 0.99, 9);
  std::map<std::string, int> counts;
  for (const auto& s : gen.Batch(2000)) {
    for (const auto& w : SplitWords(s)) {
      counts[w]++;
    }
  }
  // The most common word should dominate the median word by a wide margin.
  int max_count = 0;
  for (const auto& [w, c] : counts) {
    (void)w;
    max_count = std::max(max_count, c);
  }
  EXPECT_GT(max_count, 100);
}

TEST(TextTest, SplitWordsHandlesSeparators) {
  auto words = SplitWords("a b\nc\td  e");
  ASSERT_EQ(words.size(), 5u);
  EXPECT_EQ(words[0], "a");
  EXPECT_EQ(words[4], "e");
  EXPECT_TRUE(SplitWords("").empty());
  EXPECT_TRUE(SplitWords("   ").empty());
}

TEST(ExCameraTest, TasksAreDeterministicAndBounded) {
  ExCameraParams p;
  auto a = MakeExCameraTasks(p, 3);
  auto b = MakeExCameraTasks(p, 3);
  ASSERT_EQ(a.size(), static_cast<size_t>(p.num_tasks));
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].encode_time, b[i].encode_time);
    EXPECT_GE(a[i].encode_time, 10 * kMillisecond);
    EXPECT_LE(a[i].encode_time, p.mean_encode_time + p.encode_jitter);
    EXPECT_EQ(a[i].state_bytes, p.state_bytes);
  }
}

}  // namespace
}  // namespace jiffy
